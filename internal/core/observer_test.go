package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
)

// recObs records every Observer callback in order, for asserting the
// lifecycle contract documented on the Observer interface.
type recObs struct {
	name string
	log  *[]string // optional shared log for fan-out ordering tests

	events []obsEvent
}

type obsEvent struct {
	kind      string // "start" | "end" | "abort" | "runend"
	superstep int
	stats     StepStats
	report    Report
	err       error
	reason    string
}

func (r *recObs) record(ev obsEvent) {
	r.events = append(r.events, ev)
	if r.log != nil {
		*r.log = append(*r.log, fmt.Sprintf("%s:%s", r.name, ev.kind))
	}
}

func (r *recObs) OnSuperstepStart(s int) { r.record(obsEvent{kind: "start", superstep: s}) }
func (r *recObs) OnSuperstepEnd(s int, st StepStats) {
	r.record(obsEvent{kind: "end", superstep: s, stats: st})
}
func (r *recObs) OnAbort(s int, reason string, err error) {
	r.record(obsEvent{kind: "abort", superstep: s, reason: reason, err: err})
}
func (r *recObs) OnRunEnd(rep Report, err error) {
	r.record(obsEvent{kind: "runend", report: rep, err: err})
}

// verifyLifecycle asserts the ordering contract: paired start/end events
// with consecutive absolute numbering from first, at most one abort
// (exactly one iff the run aborted) after the last end, and exactly one
// run-end event, last.
func (r *recObs) verifyLifecycle(t *testing.T, first int, wantAbort bool) {
	t.Helper()
	if len(r.events) == 0 {
		t.Fatal("observer saw no events")
	}
	aborts, runEnds := 0, 0
	next := first
	open := -1 // superstep with a start but no end yet
	for i, ev := range r.events {
		if runEnds > 0 {
			t.Fatalf("event %d (%s) after run_end", i, ev.kind)
		}
		switch ev.kind {
		case "start":
			if aborts > 0 {
				t.Fatalf("superstep start after abort")
			}
			if open != -1 {
				t.Fatalf("superstep %d started while %d is open", ev.superstep, open)
			}
			if ev.superstep != next {
				t.Fatalf("superstep start %d, want %d", ev.superstep, next)
			}
			open = ev.superstep
		case "end":
			if ev.superstep != open {
				t.Fatalf("superstep end %d, open is %d", ev.superstep, open)
			}
			open = -1
			next = ev.superstep + 1
		case "abort":
			aborts++
		case "runend":
			runEnds++
		}
	}
	if runEnds != 1 {
		t.Fatalf("run_end fired %d times, want exactly 1 (and last)", runEnds)
	}
	wantAborts := 0
	if wantAbort {
		wantAborts = 1
	}
	if aborts != wantAborts {
		t.Fatalf("abort fired %d times, want %d", aborts, wantAborts)
	}
}

func (r *recObs) last() obsEvent { return r.events[len(r.events)-1] }

func (r *recObs) stepEnds() []obsEvent {
	var out []obsEvent
	for _, ev := range r.events {
		if ev.kind == "end" {
			out = append(out, ev)
		}
	}
	return out
}

// assertConsistent asserts the Report invariants finishRun promises on
// every exit path: totals equal the sums over Steps, the absolute
// superstep counter counts completed steps, exactly one of
// Converged/Aborted is set, and only a trailing step may be partial.
func assertConsistent(t *testing.T, rep Report) {
	t.Helper()
	var msgs, combines uint64
	completed := 0
	for i, s := range rep.Steps {
		msgs += s.Messages
		combines += s.LocalCombines
		if s.Partial {
			if i != len(rep.Steps)-1 {
				t.Fatalf("partial step record at %d is not trailing", i)
			}
		} else {
			completed++
		}
	}
	if rep.TotalMessages != msgs {
		t.Fatalf("TotalMessages = %d, steps sum to %d", rep.TotalMessages, msgs)
	}
	if rep.TotalLocalCombines != combines {
		t.Fatalf("TotalLocalCombines = %d, steps sum to %d", rep.TotalLocalCombines, combines)
	}
	if rep.Supersteps != rep.FirstSuperstep+completed {
		t.Fatalf("Supersteps = %d, want FirstSuperstep %d + %d completed", rep.Supersteps, rep.FirstSuperstep, completed)
	}
	if rep.Converged == rep.Aborted {
		t.Fatalf("Converged = %v and Aborted = %v; want exactly one", rep.Converged, rep.Aborted)
	}
	if rep.Aborted && rep.AbortReason == "" {
		t.Fatal("aborted report has no AbortReason")
	}
	if rep.Converged && rep.AbortReason != "" {
		t.Fatalf("converged report has AbortReason %q", rep.AbortReason)
	}
	if rep.Duration <= 0 {
		t.Fatal("Duration not set")
	}
}

func TestObserverLifecycleConverged(t *testing.T) {
	g := ringGraph(8, 0)
	rec := &recObs{}
	e, err := New(g, Config{Observers: []Observer{rec}}, counterProgram(3))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	rec.verifyLifecycle(t, 0, false)
	assertConsistent(t, rep)
	if len(rec.stepEnds()) != len(rep.Steps) {
		t.Fatalf("observer saw %d superstep ends, report has %d steps", len(rec.stepEnds()), len(rep.Steps))
	}
	last := rec.last()
	if last.err != nil || !last.report.Converged {
		t.Fatalf("run_end carried err=%v converged=%v", last.err, last.report.Converged)
	}
	var msgs uint64
	for _, ev := range rec.stepEnds() {
		msgs += ev.stats.Messages
	}
	if msgs != rep.TotalMessages {
		t.Fatalf("observer saw %d messages, report totals %d", msgs, rep.TotalMessages)
	}
}

// abortRun drives one abort path and returns the recorder, report and
// error. Each constructor receives the recorder so it can wire extra
// observers (e.g. a cancelling hook) before Run.
func TestObserverAbortPaths(t *testing.T) {
	neverHalt := Program[uint32, uint32]{
		Combine: func(old *uint32, new uint32) { *old += new },
		Compute: func(ctx *Context[uint32, uint32], v Vertex[uint32, uint32]) {
			ctx.Broadcast(v, 1)
		},
	}

	cases := []struct {
		name      string
		run       func(t *testing.T, rec *recObs) (Report, error)
		wantErr   func(error) bool
		partial   bool // a trailing partial step record is expected
		wantSteps int  // completed step records expected (partial excluded)
	}{
		{
			name: "cancellation",
			run: func(t *testing.T, rec *recObs) (Report, error) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				e, err := New(ringGraph(8, 0), Config{Observers: []Observer{rec}}, neverHalt)
				if err != nil {
					t.Fatal(err)
				}
				if err := e.AddObserver(ObserverFuncs{SuperstepEnd: func(s int, _ StepStats) {
					if s == 1 {
						cancel()
					}
				}}); err != nil {
					t.Fatal(err)
				}
				return e.RunContext(ctx)
			},
			wantErr:   func(err error) bool { return errors.Is(err, context.Canceled) },
			wantSteps: 2,
		},
		{
			name: "max-supersteps",
			run: func(t *testing.T, rec *recObs) (Report, error) {
				_, rep, err := Run(ringGraph(8, 0), Config{MaxSupersteps: 4, Observers: []Observer{rec}}, neverHalt)
				return rep, err
			},
			wantErr:   func(err error) bool { return errors.Is(err, ErrMaxSupersteps) },
			wantSteps: 4,
		},
		{
			name: "compute-panic",
			run: func(t *testing.T, rec *recObs) (Report, error) {
				prog := Program[uint32, uint32]{
					Combine: func(old *uint32, new uint32) { *old += new },
					Compute: func(ctx *Context[uint32, uint32], v Vertex[uint32, uint32]) {
						if ctx.Superstep() == 2 && v.ID() == 3 {
							panic("boom")
						}
						ctx.Broadcast(v, 1)
					},
				}
				_, rep, err := Run(ringGraph(8, 0), Config{Threads: 2, Observers: []Observer{rec}}, prog)
				return rep, err
			},
			wantErr:   func(err error) bool { return err != nil && strings.Contains(err.Error(), "panicked") },
			partial:   true,
			wantSteps: 2,
		},
		{
			name: "bypass-violation",
			run: func(t *testing.T, rec *recObs) (Report, error) {
				_, rep, err := Run(ringGraph(8, 0), Config{SelectionBypass: true, Observers: []Observer{rec}}, neverHalt)
				return rep, err
			},
			wantErr:   func(err error) bool { return errors.Is(err, ErrBypassViolation) },
			wantSteps: 1,
		},
		{
			name: "invariant-error",
			run: func(t *testing.T, rec *recObs) (Report, error) {
				cfg := Config{Combiner: CombinerSpin, SelectionBypass: true, CheckInvariants: true, Threads: 2, Observers: []Observer{rec}}
				e, err := New(ringGraph(16, 0), cfg, haltingFlood(10))
				if err != nil {
					t.Fatal(err)
				}
				// Corrupt a frontier dedup flag for a slot the flood has not
				// reached: the frontier-dedup audit must trip at this
				// superstep's barrier.
				if err := e.AddObserver(ObserverFuncs{SuperstepStart: func(s int) {
					if s == 2 {
						atomic.StoreUint32(&e.inNext[10], 1)
					}
				}}); err != nil {
					t.Fatal(err)
				}
				return e.Run()
			},
			wantErr: func(err error) bool {
				var ie *InvariantError
				return errors.As(err, &ie) && ie.Invariant == "frontier-dedup"
			},
			partial:   true,
			wantSteps: 2,
		},
		{
			name: "checkpoint-failure",
			run: func(t *testing.T, rec *recObs) (Report, error) {
				e, err := New(gridForCheckpoint(t), Config{Observers: []Observer{rec}}, ssspProg(1))
				if err != nil {
					t.Fatal(err)
				}
				sinkErr := errors.New("disk full")
				if err := e.SetCheckpointer(Checkpointer[uint32, uint32]{
					Every: 2,
					Sink: func(s int) (io.Writer, error) {
						if s >= 4 {
							return nil, sinkErr
						}
						return io.Discard, nil
					},
					VCodec: u32Codec{}, MCodec: u32Codec{},
				}); err != nil {
					t.Fatal(err)
				}
				return e.Run()
			},
			wantErr:   func(err error) bool { return err != nil && strings.Contains(err.Error(), "disk full") },
			wantSteps: 4,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := &recObs{}
			rep, err := tc.run(t, rec)
			if !tc.wantErr(err) {
				t.Fatalf("unexpected error: %v", err)
			}
			if !rep.Aborted || rep.Converged {
				t.Fatalf("report not marked aborted: %+v", rep)
			}
			rec.verifyLifecycle(t, 0, true)
			assertConsistent(t, rep)
			completed := 0
			for _, s := range rep.Steps {
				if !s.Partial {
					completed++
				}
			}
			if completed != tc.wantSteps {
				t.Fatalf("%d completed step records, want %d", completed, tc.wantSteps)
			}
			hasPartial := len(rep.Steps) > 0 && rep.Steps[len(rep.Steps)-1].Partial
			if hasPartial != tc.partial {
				t.Fatalf("trailing partial record = %v, want %v", hasPartial, tc.partial)
			}
			// The abort event carries the report's reason, and the final
			// run_end sees the same aborted report and error.
			var abortEv obsEvent
			for _, ev := range rec.events {
				if ev.kind == "abort" {
					abortEv = ev
				}
			}
			if abortEv.reason != rep.AbortReason {
				t.Fatalf("abort reason %q, report says %q", abortEv.reason, rep.AbortReason)
			}
			last := rec.last()
			if last.err == nil || !last.report.Aborted {
				t.Fatalf("run_end carried err=%v aborted=%v", last.err, last.report.Aborted)
			}
			// Observer step events and report step records must agree even
			// on the abort path (the in-flight superstep is not dropped).
			ends := rec.stepEnds()
			if len(ends) != len(rep.Steps) {
				t.Fatalf("observer saw %d superstep ends, report has %d steps", len(ends), len(rep.Steps))
			}
			var msgs uint64
			for _, ev := range ends {
				msgs += ev.stats.Messages
			}
			if msgs != rep.TotalMessages {
				t.Fatalf("observer saw %d messages, report totals %d", msgs, rep.TotalMessages)
			}
		})
	}
}

func TestObserverMultiSinkFanOut(t *testing.T) {
	g := ringGraph(8, 0)
	var log []string
	a := &recObs{name: "a", log: &log}
	b := &recObs{name: "b", log: &log}
	e, err := New(g, Config{Observers: []Observer{a}}, counterProgram(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddObserver(b); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	a.verifyLifecycle(t, 0, false)
	b.verifyLifecycle(t, 0, false)
	if len(a.events) != len(b.events) {
		t.Fatalf("sinks diverged: %d vs %d events", len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i].kind != b.events[i].kind || a.events[i].superstep != b.events[i].superstep {
			t.Fatalf("sinks diverged at event %d: %+v vs %+v", i, a.events[i], b.events[i])
		}
	}
	// Config.Observers are notified before sinks added with AddObserver,
	// for every event.
	for i := 0; i < len(log); i += 2 {
		if !strings.HasPrefix(log[i], "a:") || !strings.HasPrefix(log[i+1], "b:") {
			t.Fatalf("fan-out order broken at %d: %v", i, log[i:i+2])
		}
		if log[i][2:] != log[i+1][2:] {
			t.Fatalf("fan-out pairing broken at %d: %v", i, log[i:i+2])
		}
	}
	_ = rep
}

func TestAddObserverValidation(t *testing.T) {
	g := ringGraph(4, 0)
	e, err := New(g, Config{}, counterProgram(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddObserver(nil); err == nil {
		t.Fatal("nil observer accepted")
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.AddObserver(&recObs{}); err == nil {
		t.Fatal("post-Run AddObserver accepted")
	}
}

func TestAbortedReportRendering(t *testing.T) {
	g := ringGraph(8, 0)
	prog := Program[uint32, uint32]{
		Combine: func(old *uint32, new uint32) { *old += new },
		Compute: func(ctx *Context[uint32, uint32], v Vertex[uint32, uint32]) {
			ctx.Broadcast(v, 1)
		},
	}
	_, aborted, err := Run(g, Config{MaxSupersteps: 3}, prog)
	if !errors.Is(err, ErrMaxSupersteps) {
		t.Fatal(err)
	}
	if s := aborted.String(); !strings.Contains(s, "ABORTED") || !strings.Contains(s, "superstep limit") {
		t.Fatalf("aborted String() hides the abort: %q", s)
	}
	if tbl := aborted.Table(); !strings.Contains(tbl, "aborted:") {
		t.Fatalf("aborted Table() hides the abort:\n%s", tbl)
	}

	_, converged, err := Run(g, Config{}, counterProgram(2))
	if err != nil {
		t.Fatal(err)
	}
	if s := converged.String(); strings.Contains(s, "ABORTED") {
		t.Fatalf("converged String() claims abort: %q", s)
	}
	if tbl := converged.Table(); strings.Contains(tbl, "aborted:") {
		t.Fatalf("converged Table() claims abort:\n%s", tbl)
	}

	// A contained panic leaves a trailing partial record, marked in the
	// table.
	_, panicked, err := Run(g, Config{}, Program[uint32, uint32]{
		Combine: func(old *uint32, new uint32) { *old += new },
		Compute: func(ctx *Context[uint32, uint32], v Vertex[uint32, uint32]) {
			if ctx.Superstep() == 1 {
				panic("boom")
			}
			ctx.Broadcast(v, 1)
		},
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
	if tbl := panicked.Table(); !strings.Contains(tbl, "(partial)") {
		t.Fatalf("partial record not marked:\n%s", tbl)
	}
}

func TestResumedRunContinuesNumbering(t *testing.T) {
	g := gridForCheckpoint(t)
	cfg := Config{Combiner: CombinerSpin, SelectionBypass: true, Threads: 2}

	var dump bytes.Buffer
	var barrier int
	e, err := New(g, cfg, ssspProg(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetCheckpointer(Checkpointer[uint32, uint32]{
		Every: 3,
		Sink: func(s int) (io.Writer, error) {
			if barrier != 0 { // keep only the first (mid-run) checkpoint
				return io.Discard, nil
			}
			barrier = s
			return &dump, nil
		},
		VCodec: u32Codec{}, MCodec: u32Codec{},
	}); err != nil {
		t.Fatal(err)
	}
	ref, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ref.FirstSuperstep != 0 {
		t.Fatalf("fresh run FirstSuperstep = %d, want 0", ref.FirstSuperstep)
	}
	if barrier == 0 {
		t.Fatal("no checkpoint taken")
	}

	restored, err := Restore(bytes.NewReader(dump.Bytes()), g, cfg, ssspProg(1), u32Codec{}, u32Codec{})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recObs{}
	if err := restored.AddObserver(rec); err != nil {
		t.Fatal(err)
	}
	rep, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstSuperstep != barrier {
		t.Fatalf("resumed FirstSuperstep = %d, want checkpoint barrier %d", rep.FirstSuperstep, barrier)
	}
	if rep.Supersteps != ref.Supersteps {
		t.Fatalf("resumed absolute Supersteps = %d, reference %d", rep.Supersteps, ref.Supersteps)
	}
	assertConsistent(t, rep)
	// Observer numbering continues the original run's instead of
	// restarting at 0.
	rec.verifyLifecycle(t, barrier, false)
	if first := rec.events[0]; first.kind != "start" || first.superstep != barrier {
		t.Fatalf("resumed observer started at %+v, want superstep %d", first, barrier)
	}
	// The table renders absolute superstep numbers for the resumed rows.
	if tbl := rep.Table(); !strings.Contains(tbl, fmt.Sprintf("\n%9d ", barrier)) {
		t.Fatalf("resumed Table() does not start at absolute superstep %d:\n%s", barrier, tbl)
	}
	// Steps[i] is absolute superstep FirstSuperstep+i: the resumed run
	// recorded exactly the remaining supersteps.
	if len(rep.Steps) != ref.Supersteps-barrier {
		t.Fatalf("resumed run recorded %d steps, want %d", len(rep.Steps), ref.Supersteps-barrier)
	}
	// A checkpoint taken during a resumed run carries the absolute
	// counter forward: chain one more resume to prove it. The chained
	// barrier stays strictly before convergence (a converged-state
	// checkpoint replays one empty superstep by construction).
	var dump2 bytes.Buffer
	e2, err := Restore(bytes.NewReader(dump.Bytes()), g, cfg, ssspProg(1), u32Codec{}, u32Codec{})
	if err != nil {
		t.Fatal(err)
	}
	barrier2 := 0
	if err := e2.SetCheckpointer(Checkpointer[uint32, uint32]{
		Every: 1,
		Sink: func(s int) (io.Writer, error) {
			if barrier2 == 0 && s > barrier && s < ref.Supersteps {
				barrier2 = s
				return &dump2, nil
			}
			return io.Discard, nil
		},
		VCodec: u32Codec{}, MCodec: u32Codec{},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	e3, err := Restore(bytes.NewReader(dump2.Bytes()), g, cfg, ssspProg(1), u32Codec{}, u32Codec{})
	if err != nil {
		t.Fatal(err)
	}
	rep3, err := e3.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep3.FirstSuperstep != barrier2 || rep3.Supersteps != ref.Supersteps {
		t.Fatalf("chained resume: FirstSuperstep=%d (want %d), Supersteps=%d (want %d)",
			rep3.FirstSuperstep, barrier2, rep3.Supersteps, ref.Supersteps)
	}
}
