package core

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// shardedVersions enumerates the multi-shard configurations the parity
// tests sweep: both push combiners, scan and bypass, both partitioners,
// 2 and 4 shards, and every delivery/scheduling mode (barrier-only,
// overlapped drains, work stealing, and both together).
func shardedVersions() []Config {
	var out []Config
	for _, comb := range []Combiner{CombinerSpin, CombinerAtomic} {
		for _, bypass := range []bool{false, true} {
			for _, kind := range []Partition{PartitionRange, PartitionHash} {
				for _, shards := range []int{2, 4} {
					for _, mode := range []struct{ overlap, steal bool }{
						{false, false}, {true, false}, {false, true}, {true, true},
					} {
						out = append(out, Config{
							Combiner:        comb,
							SelectionBypass: bypass,
							Partition:       kind,
							Shards:          shards,
							Threads:         4,
							CheckInvariants: true,
							OverlapDelivery: mode.overlap,
							WorkStealing:    mode.steal,
						})
					}
				}
			}
		}
	}
	return out
}

// TestShardedMatchesSingleShard is the tentpole parity gate: every
// sharded configuration must produce values identical to the single-shard
// reference, under CheckInvariants, for a program with real cross-shard
// traffic (SSSP floods across the whole grid).
func TestShardedMatchesSingleShard(t *testing.T) {
	g := gridForCheckpoint(t)
	ref, refRep, err := Run(g, Config{Combiner: CombinerSpin, Threads: 4, CheckInvariants: true}, ssspProg(1))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.ValuesDense()
	for _, cfg := range shardedVersions() {
		name := cfg.VersionName()
		e, rep, err := Run(g, cfg, ssspProg(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Converged {
			t.Fatalf("%s: did not converge", name)
		}
		if rep.Supersteps != refRep.Supersteps {
			t.Fatalf("%s: %d supersteps, reference took %d", name, rep.Supersteps, refRep.Supersteps)
		}
		got := e.ValuesDense()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: dist[%d] = %d, want %d", name, i, got[i], want[i])
			}
		}
	}
}

// TestShardedStepStats checks the per-shard accounting: ShardMessages has
// one entry per shard summing to Messages, cross-shard counts are bounded
// by the total, and the bypass runs report a per-shard next frontier that
// sums to NextFrontier.
func TestShardedStepStats(t *testing.T) {
	g := gridForCheckpoint(t)
	for _, bypass := range []bool{false, true} {
		cfg := Config{Combiner: CombinerAtomic, Shards: 4, Threads: 4, SelectionBypass: bypass, CheckInvariants: true}
		_, rep, err := Run(g, cfg, ssspProg(1))
		if err != nil {
			t.Fatal(err)
		}
		sawMessages := false
		for si, s := range rep.Steps {
			if s.Messages == 0 {
				continue
			}
			sawMessages = true
			if len(s.ShardMessages) != 4 {
				t.Fatalf("bypass=%v step %d: ShardMessages len %d, want 4", bypass, si, len(s.ShardMessages))
			}
			var sum uint64
			for _, n := range s.ShardMessages {
				sum += n
			}
			if sum != s.Messages {
				t.Fatalf("bypass=%v step %d: shard messages sum %d != Messages %d", bypass, si, sum, s.Messages)
			}
			if s.CrossShardMessages > s.Messages {
				t.Fatalf("bypass=%v step %d: cross-shard %d > total %d", bypass, si, s.CrossShardMessages, s.Messages)
			}
			if im := s.ShardImbalance(); im < 1 {
				t.Fatalf("bypass=%v step %d: shard imbalance %v < 1", bypass, si, im)
			}
			if bypass {
				if len(s.ShardNextFrontier) != 4 {
					t.Fatalf("bypass step %d: ShardNextFrontier len %d, want 4", si, len(s.ShardNextFrontier))
				}
				var fsum int64
				for _, n := range s.ShardNextFrontier {
					fsum += n
				}
				if fsum != s.NextFrontier {
					t.Fatalf("bypass step %d: shard frontier sum %d != NextFrontier %d", si, fsum, s.NextFrontier)
				}
			}
		}
		if !sawMessages {
			t.Fatalf("bypass=%v: no superstep sent messages", bypass)
		}
		// The grid's SSSP flood necessarily crosses range-partition
		// boundaries at some superstep.
		var cross uint64
		for _, s := range rep.Steps {
			cross += s.CrossShardMessages
		}
		if cross == 0 {
			t.Fatalf("bypass=%v: no cross-shard messages on a 4-shard grid flood", bypass)
		}
	}
}

// TestSingleShardStatsStayFlat pins the equivalence guarantee on the
// accounting side: single-shard reports must not grow shard breakdowns.
func TestSingleShardStatsStayFlat(t *testing.T) {
	g := ringGraph(16, 0)
	_, rep, err := Run(g, Config{Combiner: CombinerSpin, Threads: 2}, counterProgram(3))
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range rep.Steps {
		if s.ShardMessages != nil || s.ShardNextFrontier != nil || s.CrossShardMessages != 0 {
			t.Fatalf("step %d: single-shard report has shard fields: %+v", si, s)
		}
		if s.EarlyDeliveredBatches != 0 || s.StolenTasks != 0 || s.SkippedShards != 0 {
			t.Fatalf("step %d: single-shard report has overlap/scheduler fields: %+v", si, s)
		}
		if s.ShardImbalance() != 0 {
			t.Fatalf("step %d: single-shard ShardImbalance = %v", si, s.ShardImbalance())
		}
	}
}

// TestObserverSeesShardStats checks that the per-shard breakdown reaches
// observers (the telemetry layer feeds off the same callback).
func TestObserverSeesShardStats(t *testing.T) {
	g := gridForCheckpoint(t)
	var shardMsgs [][]uint64
	obs := ObserverFuncs{
		SuperstepEnd: func(_ int, s StepStats) { shardMsgs = append(shardMsgs, s.ShardMessages) },
	}
	e, err := New(g, Config{Combiner: CombinerSpin, Shards: 2, Threads: 2}, ssspProg(1))
	if err != nil {
		t.Fatal(err)
	}
	e.AddObserver(obs)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(shardMsgs) == 0 {
		t.Fatal("observer saw no supersteps")
	}
	found := false
	for _, sm := range shardMsgs {
		if len(sm) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("observer never saw a 2-entry ShardMessages breakdown")
	}
}

// TestShardedCheckpointRoundTrip runs the sharded engine with
// checkpointing and restores every dump, requiring the resumed runs to
// land on the single-shard reference values — the sharded analogue of
// TestCheckpointRestoreContinuesIdentically.
func TestShardedCheckpointRoundTrip(t *testing.T) {
	g := gridForCheckpoint(t)
	ref, _, err := Run(g, Config{Combiner: CombinerSpin, Threads: 2}, ssspProg(1))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.ValuesDense()
	for _, cfg := range []Config{
		{Combiner: CombinerSpin, Shards: 3, Threads: 2, CheckInvariants: true},
		{Combiner: CombinerAtomic, Shards: 4, Partition: PartitionHash, Threads: 2, CheckInvariants: true},
		{Combiner: CombinerSpin, Shards: 2, SelectionBypass: true, Threads: 2, CheckInvariants: true},
	} {
		name := cfg.VersionName()
		var dumps []*bytes.Buffer
		e, err := New(g, cfg, ssspProg(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetCheckpointer(Checkpointer[uint32, uint32]{
			Every: 3,
			Sink: func(int) (io.Writer, error) {
				buf := &bytes.Buffer{}
				dumps = append(dumps, buf)
				return buf, nil
			},
			VCodec: u32Codec{},
			MCodec: u32Codec{},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(dumps) == 0 {
			t.Fatalf("%s: no checkpoints taken", name)
		}
		for di, dump := range dumps {
			restored, err := Restore(bytes.NewReader(dump.Bytes()), g, cfg, ssspProg(1), u32Codec{}, u32Codec{})
			if err != nil {
				t.Fatalf("%s: restore #%d: %v", name, di, err)
			}
			if _, err := restored.Run(); err != nil {
				t.Fatalf("%s: resumed run #%d: %v", name, di, err)
			}
			got := restored.ValuesDense()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: restore #%d: dist[%d] = %d, want %d", name, di, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardTopologyMismatch checks that restores across different shard
// layouts are rejected instead of silently scrambling local slots.
func TestShardTopologyMismatch(t *testing.T) {
	g := gridForCheckpoint(t)
	dump := func(cfg Config) []byte {
		var buf bytes.Buffer
		e, err := New(g, cfg, ssspProg(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetCheckpointer(Checkpointer[uint32, uint32]{
			Every:  2,
			Sink:   func(int) (io.Writer, error) { buf.Reset(); return &buf, nil },
			VCodec: u32Codec{},
			MCodec: u32Codec{},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 {
			t.Fatal("no checkpoint written")
		}
		return buf.Bytes()
	}
	flat := dump(Config{Combiner: CombinerSpin, Threads: 2})
	sharded3 := dump(Config{Combiner: CombinerSpin, Shards: 3, Threads: 2})
	cases := []struct {
		name    string
		data    []byte
		cfg     Config
		wantSub string
	}{
		{"flat-into-sharded", flat, Config{Combiner: CombinerSpin, Shards: 3, Threads: 2}, "shard topology mismatch"},
		{"sharded-into-flat", sharded3, Config{Combiner: CombinerSpin, Threads: 2}, "shard topology mismatch"},
		{"wrong-shard-count", sharded3, Config{Combiner: CombinerSpin, Shards: 4, Threads: 2}, "shard topology mismatch"},
		{"wrong-partition", sharded3, Config{Combiner: CombinerSpin, Shards: 3, Partition: PartitionHash, Threads: 2}, "partitioned by"},
	}
	for _, tc := range cases {
		_, err := Restore(bytes.NewReader(tc.data), g, tc.cfg, ssspProg(1), u32Codec{}, u32Codec{})
		if err == nil {
			t.Fatalf("%s: restore succeeded, want error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestV1RestoreIntoShardedEngine checks the legacy flat v1 format scatters
// correctly onto a sharded engine (v1 predates shard topology, so it is
// accepted into any layout).
func TestV1RestoreIntoShardedEngine(t *testing.T) {
	g := gridForCheckpoint(t)
	cfg := Config{Combiner: CombinerSpin, Threads: 2}
	e, err := New(g, cfg, ssspProg(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.writeCheckpointV1(&buf, u32Codec{}, u32Codec{}); err != nil {
		t.Fatal(err)
	}
	scfg := Config{Combiner: CombinerSpin, Shards: 3, Threads: 2, CheckInvariants: true}
	restored, err := Restore(bytes.NewReader(buf.Bytes()), g, scfg, ssspProg(1), u32Codec{}, u32Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Run(); err != nil {
		t.Fatal(err)
	}
	want, got := e.ValuesDense(), restored.ValuesDense()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestShardConfigValidation pins the construction errors.
func TestShardConfigValidation(t *testing.T) {
	g := ringGraph(8, 0)
	prog := counterProgram(1)
	if _, err := New(g, Config{Shards: -1}, prog); err == nil || !strings.Contains(err.Error(), "Shards") {
		t.Fatalf("negative shards: %v", err)
	}
	// CombinerPull × shards used to be rejected; the deprecated alias now
	// normalises to an inbox combiner with Config.Direction pull, so it
	// must construct (the pull mailbox itself stays single-shard).
	if e, err := New(g, Config{Shards: 2, Combiner: CombinerPull}, prog); err != nil {
		t.Fatalf("pull+shards should normalise to Direction pull: %v", err)
	} else if e.cfg.Direction != DirectionPull || e.cfg.Combiner == CombinerPull {
		t.Fatalf("pull+shards normalised to combiner=%v direction=%v, want inbox combiner + DirectionPull", e.cfg.Combiner, e.cfg.Direction)
	}
	// Overlap and stealing are shard-scheduler features: meaningless (and
	// rejected) on the flat engine, whether Shards is unset or exactly 1.
	for _, shards := range []int{0, 1} {
		if _, err := New(g, Config{Shards: shards, OverlapDelivery: true}, prog); err == nil || !strings.Contains(err.Error(), "OverlapDelivery") {
			t.Fatalf("overlap with Shards=%d: %v", shards, err)
		}
		if _, err := New(g, Config{Shards: shards, WorkStealing: true}, prog); err == nil || !strings.Contains(err.Error(), "WorkStealing") {
			t.Fatalf("stealing with Shards=%d: %v", shards, err)
		}
	}
	cfg := Config{Shards: 4, Partition: PartitionHash}
	if name := cfg.VersionName(); !strings.Contains(name, "shards4") || !strings.Contains(name, "hash") {
		t.Fatalf("VersionName %q does not name the shard config", name)
	}
	cfg = Config{Shards: 4, OverlapDelivery: true, WorkStealing: true}
	if name := cfg.VersionName(); !strings.Contains(name, "overlap") || !strings.Contains(name, "steal") {
		t.Fatalf("VersionName %q does not name the overlap/steal modes", name)
	}
	if name := (Config{}).VersionName(); strings.Contains(name, "shards") {
		t.Fatalf("single-shard VersionName %q mentions shards", name)
	}
}

// TestShardedEdgeBalanced checks the per-shard edge-balanced cuts path
// (range partitioner only) still produces correct results.
func TestShardedEdgeBalanced(t *testing.T) {
	g := gridForCheckpoint(t)
	ref, _, err := Run(g, Config{Combiner: CombinerSpin, Threads: 2}, ssspProg(1))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.ValuesDense()
	for _, shards := range []int{2, 4} {
		cfg := Config{
			Combiner:        CombinerAtomic,
			Schedule:        ScheduleEdgeBalanced,
			Shards:          shards,
			Threads:         4,
			CheckInvariants: true,
		}
		e, _, err := Run(g, cfg, ssspProg(1))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got := e.ValuesDense()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: dist[%d] = %d, want %d", shards, i, got[i], want[i])
			}
		}
	}
}

// TestMoreShardsThanSlots exercises degenerate partitions where some
// shards own zero slots.
func TestMoreShardsThanSlots(t *testing.T) {
	g := ringGraph(3, 0)
	for _, kind := range []Partition{PartitionRange, PartitionHash} {
		cfg := Config{Combiner: CombinerSpin, Shards: 8, Partition: kind, Threads: 2, CheckInvariants: true}
		e, rep, err := Run(g, cfg, counterProgram(4))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !rep.Converged {
			t.Fatalf("%v: did not converge", kind)
		}
		for i, v := range e.ValuesDense() {
			if v != 4 {
				t.Fatalf("%v: value[%d] = %d, want 4", kind, i, v)
			}
		}
	}
}
