package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"ipregel/internal/graph"
)

// CombineFunc merges a newly received message into the single message a
// mailbox holds (paper Fig. 4, IP_combine). It must be commutative and
// associative for the result to be independent of delivery order.
type CombineFunc[M any] func(old *M, new M)

// mailbox is the combination module (paper §6). Each implementation owns
// the arrays whose sizes the paper's memory analysis compares: the push
// versions carry one lock per vertex (mutex 8 B, spinlock 4 B in Go); the
// pull version carries no locks but needs per-vertex outboxes.
//
// All mailboxes are double-buffered: compute at superstep s reads the
// "now" buffer (messages sent during s-1) while new messages land in the
// "next" buffer, swapped at the barrier.
type mailbox[M any] interface {
	// deliver pushes msg into slot dst's next-superstep inbox, combining
	// if a message is already present. Safe for concurrent senders on the
	// push implementations; panics on the pull implementation (Send is
	// not part of the broadcast-only contract, §6.2).
	deliver(dst int, msg M)
	// setOutbox buffers the broadcast payload of slot src (pull only).
	setOutbox(src int, msg M)
	// collectInto fetches and combines the outboxes of slot's
	// in-neighbours into slot's next inbox (pull only). Only the owner of
	// slot may call it, which is what makes the pull design race-free.
	// nb is the calling worker's decode buffer for the compressed graph
	// backend (unused on flat graphs).
	collectInto(slot int, nb *graph.NeighborBuf)
	// take moves the current message for slot into *m, reporting whether
	// one existed. A second call in the same superstep returns false,
	// matching IP_get_next_message's drain loop over the single-message
	// mailbox (§6.3).
	take(slot int, m *M) bool
	// hasCurrent reports whether slot has an unread current message.
	hasCurrent(slot int) bool
	// peek reads slot's current message without consuming it (used by
	// checkpointing at barriers).
	peek(slot int) (M, bool)
	// restoreCurrent reinstates a current message (checkpoint restore).
	restoreCurrent(slot int, m M)
	// swap publishes the next buffer as current. Stale unread flags from
	// the previous superstep are cleared.
	swap()
	// clearOutboxes resets all broadcast flags (pull only; called after
	// the collect phase).
	clearOutboxes()
	// usesPull distinguishes the collect-phase implementations.
	usesPull() bool
	// footprintBytes reports the heap bytes of the mailbox arrays, for
	// the §7.4 accounting.
	footprintBytes() uint64
	// deliveryCounts returns how many deliveries combined into an occupied
	// mailbox and how many filled an empty one since the last reset. The
	// counters are maintained only under Config.CheckInvariants (both are
	// 0 otherwise) and feed the engine's message-conservation audit.
	deliveryCounts() (combines, fills uint64)
	// resetDeliveryCounts zeroes the counters at the superstep barrier.
	resetDeliveryCounts()
	// contentionRetries returns the cumulative count of failed
	// compare-and-swap attempts in delivery (the atomic combiner's
	// value-word combine retries and lost empty-slot claims) — the live
	// contention signal StepStats.CASRetries exposes per superstep.
	// Always 0 for the lock-based and pull combiners, whose waiting
	// happens inside locks rather than CAS retry loops.
	contentionRetries() uint64
	// auditBarrier verifies implementation-specific barrier invariants
	// (e.g. the atomic mailbox's state machine holds no slot mid-
	// publication once all workers have joined). Called single-threaded
	// between the compute phase and the buffer swap, only under
	// Config.CheckInvariants.
	auditBarrier() error
}

// pushBuffers is the state shared by both push-based combiners.
type pushBuffers[M any] struct {
	combine         CombineFunc[M]
	now, next       []M
	hasNow, hasNext []uint8
	// check enables the delivery counters (Config.CheckInvariants).
	// Increments use sync/atomic: depositLocked holds only the target
	// slot's lock, so deposits to different slots race on the counters.
	check             bool
	nCombines, nFills uint64
}

func newPushBuffers[M any](slots int, combine CombineFunc[M], check bool) pushBuffers[M] {
	return pushBuffers[M]{
		combine: combine,
		now:     make([]M, slots),
		next:    make([]M, slots),
		hasNow:  make([]uint8, slots),
		hasNext: make([]uint8, slots),
		check:   check,
	}
}

func (b *pushBuffers[M]) deliveryCounts() (combines, fills uint64) {
	return atomic.LoadUint64(&b.nCombines), atomic.LoadUint64(&b.nFills)
}

func (b *pushBuffers[M]) resetDeliveryCounts() {
	atomic.StoreUint64(&b.nCombines, 0)
	atomic.StoreUint64(&b.nFills, 0)
}

// contentionRetries: the lock-based and pull combiners have no CAS retry
// loops; their contention shows up as lock wait time instead.
func (b *pushBuffers[M]) contentionRetries() uint64 { return 0 }

func (b *pushBuffers[M]) take(slot int, m *M) bool {
	if b.hasNow[slot] == 0 {
		return false
	}
	*m = b.now[slot]
	b.hasNow[slot] = 0
	return true
}

func (b *pushBuffers[M]) hasCurrent(slot int) bool { return b.hasNow[slot] != 0 }

func (b *pushBuffers[M]) peek(slot int) (M, bool) {
	var m M
	if b.hasNow[slot] == 0 {
		return m, false
	}
	return b.now[slot], true
}

func (b *pushBuffers[M]) restoreCurrent(slot int, m M) {
	b.now[slot] = m
	b.hasNow[slot] = 1
}

func (b *pushBuffers[M]) swap() {
	clear(b.hasNow) // drop stale flags of vertices that never drained
	b.now, b.next = b.next, b.now
	b.hasNow, b.hasNext = b.hasNext, b.hasNow
}

// depositLocked combines msg into slot's next inbox; the caller must hold
// slot's lock.
func (b *pushBuffers[M]) depositLocked(dst int, msg M) {
	if b.hasNext[dst] != 0 {
		b.combine(&b.next[dst], msg)
		if b.check {
			atomic.AddUint64(&b.nCombines, 1)
		}
	} else {
		b.next[dst] = msg
		b.hasNext[dst] = 1
		if b.check {
			atomic.AddUint64(&b.nFills, 1)
		}
	}
}

func (b *pushBuffers[M]) buffersBytes() uint64 {
	var m M
	msg := uint64(unsafe.Sizeof(m))
	slots := uint64(len(b.now))
	return slots*(2*msg) + slots*2
}

// mutexMailbox is the block-waiting push combiner (§6.1): one sync.Mutex
// per vertex mailbox.
type mutexMailbox[M any] struct {
	pushBuffers[M]
	locks []sync.Mutex
}

func newMutexMailbox[M any](slots int, combine CombineFunc[M], check bool) *mutexMailbox[M] {
	return &mutexMailbox[M]{
		pushBuffers: newPushBuffers[M](slots, combine, check),
		locks:       make([]sync.Mutex, slots),
	}
}

func (mb *mutexMailbox[M]) deliver(dst int, msg M) {
	mb.locks[dst].Lock()
	mb.depositLocked(dst, msg)
	mb.locks[dst].Unlock()
}

func (mb *mutexMailbox[M]) setOutbox(int, M) {
	panic("core: broadcast outbox used with a push combiner")
}
func (mb *mutexMailbox[M]) collectInto(int, *graph.NeighborBuf) {
	panic("core: collect phase used with a push combiner")
}
func (mb *mutexMailbox[M]) clearOutboxes()      {}
func (mb *mutexMailbox[M]) usesPull() bool      { return false }
func (mb *mutexMailbox[M]) auditBarrier() error { return nil }
func (mb *mutexMailbox[M]) footprintBytes() uint64 {
	return mb.buffersBytes() + uint64(len(mb.locks))*mutexBytes
}

// spinMailbox is the busy-waiting push combiner (§6.1): one 4-byte
// spinlock per vertex mailbox, 50% lighter than the mutex version in Go
// (90% in the paper's C, where a pthread mutex is 40 bytes).
type spinMailbox[M any] struct {
	pushBuffers[M]
	locks []spinLock
}

func newSpinMailbox[M any](slots int, combine CombineFunc[M], check bool) *spinMailbox[M] {
	return &spinMailbox[M]{
		pushBuffers: newPushBuffers[M](slots, combine, check),
		locks:       make([]spinLock, slots),
	}
}

func (mb *spinMailbox[M]) deliver(dst int, msg M) {
	mb.locks[dst].lock()
	mb.depositLocked(dst, msg)
	mb.locks[dst].unlock()
}

func (mb *spinMailbox[M]) setOutbox(int, M) {
	panic("core: broadcast outbox used with a push combiner")
}
func (mb *spinMailbox[M]) collectInto(int, *graph.NeighborBuf) {
	panic("core: collect phase used with a push combiner")
}
func (mb *spinMailbox[M]) clearOutboxes()      {}
func (mb *spinMailbox[M]) usesPull() bool      { return false }
func (mb *spinMailbox[M]) auditBarrier() error { return nil }
func (mb *spinMailbox[M]) footprintBytes() uint64 {
	return mb.buffersBytes() + uint64(len(mb.locks))*spinLockBytes
}

// pullMailbox is the pull-based combiner (§6.2). Senders buffer one
// message in their own outbox; at the end of the superstep each vertex
// fetches its in-neighbours' outboxes and combines into its own inbox.
// All inter-vertex interaction is read-only, so no locks exist at all —
// the paper's race-free design with zero data-race-protection memory.
type pullMailbox[M any] struct {
	pushBuffers[M] // reused as the double-buffered inbox (no locks taken)
	outbox         []M
	outFlag        []uint8
	g              *graph.Graph
	shift          int
}

func newPullMailbox[M any](slots int, combine CombineFunc[M], g *graph.Graph, shift int, check bool) *pullMailbox[M] {
	return &pullMailbox[M]{
		pushBuffers: newPushBuffers[M](slots, combine, check),
		outbox:      make([]M, slots),
		outFlag:     make([]uint8, slots),
		g:           g,
		shift:       shift,
	}
}

func (mb *pullMailbox[M]) deliver(int, M) {
	panic("core: IP_send_message is not available with the pull combiner; the broadcast version requires broadcast-only applications (paper §6.2)")
}

func (mb *pullMailbox[M]) setOutbox(src int, msg M) {
	mb.outbox[src] = msg
	mb.outFlag[src] = 1
}

func (mb *pullMailbox[M]) collectInto(slot int, buf *graph.NeighborBuf) {
	idx := slot - mb.shift
	for _, nb := range mb.g.InNeighborsWith(buf, idx) {
		nbSlot := int(nb) + mb.shift
		if mb.outFlag[nbSlot] != 0 {
			mb.depositLocked(slot, mb.outbox[nbSlot]) // owner-only write: no lock needed
		}
	}
}

func (mb *pullMailbox[M]) clearOutboxes()      { clear(mb.outFlag) }
func (mb *pullMailbox[M]) usesPull() bool      { return true }
func (mb *pullMailbox[M]) auditBarrier() error { return nil }

func (mb *pullMailbox[M]) footprintBytes() uint64 {
	var m M
	msg := uint64(unsafe.Sizeof(m))
	return mb.buffersBytes() + uint64(len(mb.outbox))*msg + uint64(len(mb.outFlag))
}

// newMailbox builds the combination module version chosen by cfg. It
// fails when the version's assumptions do not hold for M (the atomic
// combiner requires word-sized messages).
func newMailbox[M any](cfg Config, slots int, combine CombineFunc[M], g *graph.Graph, shift int) (mailbox[M], error) {
	check := cfg.CheckInvariants
	switch cfg.Combiner {
	case CombinerMutex:
		return newMutexMailbox[M](slots, combine, check), nil
	case CombinerSpin:
		return newSpinMailbox[M](slots, combine, check), nil
	case CombinerPull:
		return newPullMailbox[M](slots, combine, g, shift, check), nil
	case CombinerAtomic:
		return newAtomicMailbox[M](slots, combine, check)
	}
	return nil, fmt.Errorf("core: unknown combiner %v", cfg.Combiner)
}
