package core

// Hybrid push/pull direction machinery (Config.Direction). The legacy
// CombinerPull mailbox welded the pull transport to the combination
// module and was single-shard only; here the direction is an engine
// decision taken per superstep, layered over any inbox combiner:
//
//   - Push supersteps are unchanged: Broadcast expands to per-neighbour
//     deliveries through the routing/caching layers.
//   - Pull supersteps buffer one outbox entry per broadcasting vertex
//     (pullOut/pullFlag, global-slot indexed, owner-written — each
//     shard's vertices touch only their own slot segment, which is what
//     makes the outboxes shard-aware with zero locks) and fan out in a
//     collect phase: every destination walks its in-neighbours and
//     deposits flagged outbox entries into its own shard's inbox
//     mailbox. Deposits go through the ordinary mailbox deliver path,
//     so delivery counting — and with it the message-conservation
//     audit — keeps working: a pull superstep's Messages count the
//     logical fan-out (out-degree per broadcast), which equals the
//     collect deposits exactly. That same counting makes push-only,
//     pull-only and adaptive runs of one program Fingerprint-identical.
//
// DirectionAdaptive picks per superstep from the exact density of the
// upcoming frontier: pull when its out-edge count reaches
// pullEdgeCut (= DirectionThreshold·|E|), push otherwise. The density
// is recomputed from barrier state (post-swap mail, promoted frontier),
// which checkpoints capture in full — a Restored engine reseeds from
// the same state and re-derives the same decisions, so crash/resume
// cannot diverge across a direction switch.

// hybridPull reports whether the CURRENT superstep's sends travel the
// hybrid pull transport (distinct from the legacy usesPull mailbox).
func (e *Engine[V, M]) hybridPull() bool {
	return e.pullOut != nil && e.curDir == DirectionPull
}

// beginSuperstepDirection fixes the running superstep's transport and
// the switch marker, before any worker starts. Deterministic: fixed
// modes always pick their mode; adaptive compares the reseeded frontier
// density against the edge threshold.
func (e *Engine[V, M]) beginSuperstepDirection() {
	switch {
	case e.usesPull() || e.cfg.Direction == DirectionPull:
		e.curDir = DirectionPull
	case e.cfg.Direction == DirectionAdaptive && e.frontierEdges >= e.pullEdgeCut:
		e.curDir = DirectionPull
	default:
		e.curDir = DirectionPush
	}
	e.dirSwitched = e.haveLastDir && e.curDir != e.lastDir
	e.lastDir, e.haveLastDir = e.curDir, true
}

// reseedFrontierDensity recomputes the out-edge count of the upcoming
// frontier for the adaptive decision. Called once at run start (fresh
// or restored alike) and after every barrier; a no-op outside adaptive
// mode.
func (e *Engine[V, M]) reseedFrontierDensity() {
	if e.cfg.Direction != DirectionAdaptive {
		return
	}
	e.frontierEdges = e.countFrontierEdges()
}

// countFrontierEdges sums the out-degrees of the vertices the next
// superstep will run: everything on superstep 0 (all vertices start
// active), the promoted frontier under selection bypass, and otherwise
// an exact parallel scan of the active flags and post-swap mailboxes —
// the same `active || hasCurrent` guard the compute scan applies.
func (e *Engine[V, M]) countFrontierEdges() uint64 {
	if e.superstep == 0 {
		return e.g.M()
	}
	if e.cfg.SelectionBypass {
		var total uint64
		if e.nShards > 1 {
			for s, sh := range e.shards {
				for _, local := range sh.frontier {
					total += uint64(e.g.OutDegree(e.part.globalOf(s, int(local)) - e.shift))
				}
			}
			return total
		}
		for _, slot := range e.frontier {
			total += uint64(e.g.OutDegree(int(slot) - e.shift))
		}
		return total
	}
	if e.dirSums == nil {
		e.dirSums = make([]uint64, e.threads)
	} else {
		clear(e.dirSums)
	}
	sums := e.dirSums
	e.parallelFor(e.g.N(), func(w, i int) {
		sh, local := e.slotShard(i + e.shift)
		if sh.active[local] != 0 || sh.mb.hasCurrent(local) {
			sums[w] += uint64(e.g.OutDegree(i))
		}
	})
	var total uint64
	for _, s := range sums {
		total += s
	}
	return total
}

// collectHybrid is the pull superstep's fan-out: every destination
// vertex walks its in-neighbours and deposits the flagged outbox
// entries into its own inbox. Each destination is processed by exactly
// one worker and deliver is concurrent-safe on every inbox combiner, so
// the phase is race-free without any collect-side locking.
func (e *Engine[V, M]) collectHybrid() {
	if e.nShards > 1 {
		e.collectHybridSharded()
		return
	}
	if e.cfg.SelectionBypass {
		// Only enrolled recipients can have mail (the pull broadcast
		// enrolled its out-neighbours), so collection is frontier-bounded.
		next := e.frontierNext
		e.parallelFor(len(next), func(w, i int) {
			slot := int(next[i])
			e.collectSlot(0, slot, slot, e.workers[w])
		})
		return
	}
	e.parallelFor(e.g.N(), func(w, i int) {
		slot := i + e.shift
		e.collectSlot(0, slot, slot, e.workers[w])
	})
}

// collectHybridSharded spreads the collect over the precomputed scan
// spans — including shards the compute phase skipped: receiving mail is
// exactly what makes a skipped shard runnable again, and the deposits
// are counted into the per-worker pulled[] so updateShardActivity sees
// them.
func (e *Engine[V, M]) collectHybridSharded() {
	if e.cfg.SelectionBypass {
		e.parallelFor(e.nShards, func(w, d int) {
			sh := e.shards[d]
			for _, local := range sh.frontierNext {
				e.collectSlot(int32(d), int(local), e.part.globalOf(d, int(local)), e.workers[w])
			}
		})
		return
	}
	spans := e.scanSpans
	e.forSpans(len(spans), func(w, k int) {
		sp := spans[k]
		for local := sp.lo; local < sp.hi; local++ {
			global := e.part.globalOf(int(sp.shard), int(local))
			if global < e.shift {
				continue // desolate dead zone (§5)
			}
			e.collectSlot(sp.shard, int(local), global, e.workers[w])
		}
	})
}

// collectSlot deposits every flagged in-neighbour outbox entry into the
// destination's shard mailbox (local slot `local`, global slot `slot`).
func (e *Engine[V, M]) collectSlot(shard int32, local, slot int, ctx *Context[V, M]) {
	sh := e.shards[shard]
	for _, nb := range e.g.InNeighborsWith(&ctx.nbuf, slot-e.shift) {
		nbSlot := int(nb) + e.shift
		if e.pullFlag[nbSlot] == 0 {
			continue
		}
		sh.mb.deliver(local, e.pullOut[nbSlot])
		if ctx.pulled != nil {
			ctx.pulled[shard]++
			if src, _ := e.part.locate(nbSlot); int32(src) != shard {
				ctx.pulledCross++
			}
		}
	}
}
