package core

import "sync"

// stealQueue is one worker's task queue under the work-stealing shard
// scheduler (Config.WorkStealing): a deque of span indices, seeded by
// shard affinity before the phase, with the owner popping from the
// front (preserving the seeded scan order and its cache locality) and
// thieves popping from the back. A plain mutex serialises both ends —
// each pop hands out a span of thousands of vertices, so the lock is
// nowhere near the per-vertex hot path. The padding keeps two queues
// off one cache line; without it adjacent owners' pops false-share.
type stealQueue struct {
	_    [64]byte
	mu   sync.Mutex
	idx  []int32
	head int
	_    [64]byte
}

// reset and push run single-threaded at seed time, before the phase's
// workers are dispatched; no locking needed.
func (q *stealQueue) reset() {
	q.idx = q.idx[:0]
	q.head = 0
}

func (q *stealQueue) push(k int32) { q.idx = append(q.idx, k) }

// popFront claims the owner's next task in seeded order.
func (q *stealQueue) popFront() (int32, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.idx) {
		return 0, false
	}
	k := q.idx[q.head]
	q.head++
	return k, true
}

// popBack steals the task the owner would reach last.
func (q *stealQueue) popBack() (int32, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.idx) {
		return 0, false
	}
	k := q.idx[len(q.idx)-1]
	q.idx = q.idx[:len(q.idx)-1]
	return k, true
}

// workerPool keeps one long-lived goroutine per worker for engines
// configured with Config.PersistentWorkers. The default engine forks
// goroutines per phase (cheap in Go, and what the fork-join OpenMP model
// of the paper maps to most directly); a persistent pool avoids the
// per-phase spawn cost at the price of channel synchronisation — the
// classic shared-memory BSP trade-off, measurable with
// BenchmarkWorkerPool.
type workerPool struct {
	jobs []chan func()
	done chan struct{}
}

func newWorkerPool(threads int) *workerPool {
	p := &workerPool{
		jobs: make([]chan func(), threads),
		done: make(chan struct{}, threads),
	}
	for i := range p.jobs {
		ch := make(chan func(), 1)
		p.jobs[i] = ch
		go func() {
			for f := range ch {
				f()
				p.done <- struct{}{}
			}
		}()
	}
	return p
}

// run dispatches f(w) to the first t workers and blocks until all
// complete. f must contain its own panic handling (the engine's guard
// wrapper provides it).
func (p *workerPool) run(t int, f func(w int)) {
	for w := 0; w < t; w++ {
		w := w
		p.jobs[w] <- func() { f(w) }
	}
	for w := 0; w < t; w++ {
		<-p.done
	}
}

// stop terminates the worker goroutines; the pool must not be used
// afterwards.
func (p *workerPool) stop() {
	for _, ch := range p.jobs {
		close(ch)
	}
}
