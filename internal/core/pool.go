package core

// workerPool keeps one long-lived goroutine per worker for engines
// configured with Config.PersistentWorkers. The default engine forks
// goroutines per phase (cheap in Go, and what the fork-join OpenMP model
// of the paper maps to most directly); a persistent pool avoids the
// per-phase spawn cost at the price of channel synchronisation — the
// classic shared-memory BSP trade-off, measurable with
// BenchmarkWorkerPool.
type workerPool struct {
	jobs []chan func()
	done chan struct{}
}

func newWorkerPool(threads int) *workerPool {
	p := &workerPool{
		jobs: make([]chan func(), threads),
		done: make(chan struct{}, threads),
	}
	for i := range p.jobs {
		ch := make(chan func(), 1)
		p.jobs[i] = ch
		go func() {
			for f := range ch {
				f()
				p.done <- struct{}{}
			}
		}()
	}
	return p
}

// run dispatches f(w) to the first t workers and blocks until all
// complete. f must contain its own panic handling (the engine's guard
// wrapper provides it).
func (p *workerPool) run(t int, f func(w int)) {
	for w := 0; w < t; w++ {
		w := w
		p.jobs[w] <- func() { f(w) }
	}
	for w := 0; w < t; w++ {
		<-p.done
	}
}

// stop terminates the worker goroutines; the pool must not be used
// afterwards.
func (p *workerPool) stop() {
	for _, ch := range p.jobs {
		close(ch)
	}
}
