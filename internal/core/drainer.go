package core

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// overlapBatchCap is the number of evicted (local slot, message) entries a
// routing cache accumulates before handing the batch to the destination
// shard's drainer. Small enough that batches form even on modest graphs,
// large enough that the per-batch channel handoff amortises across many
// deliveries.
const overlapBatchCap = 128

// shardBatch is one unit of overlapped cross-shard delivery: parallel
// arrays of destination local slots and their (already router-combined)
// messages, bound for a single shard's mailbox.
type shardBatch[M any] struct {
	dst []int32
	msg []M
}

func (b *shardBatch[M]) reset() {
	b.dst = b.dst[:0]
	b.msg = b.msg[:0]
}

func (b *shardBatch[M]) full() bool { return len(b.dst) >= overlapBatchCap }

func (b *shardBatch[M]) add(local int32, m M) {
	b.dst = append(b.dst, local)
	b.msg = append(b.msg, m)
}

// shardDrainer owns the Config.OverlapDelivery machinery: one long-lived
// goroutine per shard consuming a queue of inbound batches and applying
// them to that shard's mailbox while the compute phase is still running.
//
// The one-drainer-per-shard invariant is what makes early delivery
// contention-free: with overlap on, every delivery a sharded engine makes
// during compute goes through a batch (evictions no longer touch
// mailboxes directly), so each shard's mailbox has exactly one writer —
// its drainer — until the barrier. At the barrier the engine quiesces the
// drainers (quiesce waits for every submitted batch to be applied) before
// the residual drain flushes the caches' remaining entries, preserving
// the single-writer property end to end and keeping the
// message-conservation audit exact: a quiesced barrier has every Send
// accounted for as a router combine, a mailbox combine or a mailbox fill.
type shardDrainer[M any] struct {
	queues []chan *shardBatch[M]
	free   chan *shardBatch[M]
	// inFlight counts submitted-but-unapplied batches; the checkpoint
	// writer asserts it is zero (checkpoints only happen at quiesced
	// barriers).
	inFlight atomic.Int64
	// pending gates quiesce: Add on submit, Done after apply.
	pending sync.WaitGroup
	// workers tracks the drainer goroutines for stop.
	workers sync.WaitGroup
	mbs     []mailbox[M]
	onPanic func(r any)
	started bool
}

func newShardDrainer[M any](mbs []mailbox[M], onPanic func(r any)) *shardDrainer[M] {
	d := &shardDrainer[M]{
		queues:  make([]chan *shardBatch[M], len(mbs)),
		free:    make(chan *shardBatch[M], 4*len(mbs)),
		mbs:     mbs,
		onPanic: onPanic,
	}
	for s := range d.queues {
		// A small buffer lets a worker hand off a batch and keep
		// computing; a drainer that falls behind exerts natural
		// backpressure through the blocking send.
		d.queues[s] = make(chan *shardBatch[M], 4)
	}
	return d
}

// start spawns one drainer goroutine per shard. Called at the top of
// RunContext; stop is deferred on every exit path.
func (d *shardDrainer[M]) start() {
	d.started = true
	for s := range d.queues {
		s := s
		d.workers.Add(1)
		go func() {
			defer d.workers.Done()
			for b := range d.queues[s] {
				d.applyOne(s, b)
				d.pending.Done()
				d.inFlight.Add(-1)
				d.recycle(b)
			}
		}()
	}
}

// applyOne applies one batch to its shard's mailbox. A panic (a buggy
// user Combine running on the drainer goroutine) is contained exactly
// like a compute-worker panic — recorded for Run to report — and the
// drainer keeps consuming so submitting workers can never deadlock on a
// dead queue.
func (d *shardDrainer[M]) applyOne(shard int, b *shardBatch[M]) {
	defer func() {
		if r := recover(); r != nil {
			d.onPanic(r)
		}
	}()
	mb := d.mbs[shard]
	for i, local := range b.dst {
		mb.deliver(int(local), b.msg[i])
	}
}

// submit hands a full batch to shard's drainer, blocking if its queue is
// full. Callers are compute workers; quiesce is only ever called after
// they have all joined the barrier, so Add never races a Wait-at-zero.
func (d *shardDrainer[M]) submit(shard int, b *shardBatch[M]) {
	d.pending.Add(1)
	d.inFlight.Add(1)
	d.queues[shard] <- b
}

// quiesce blocks until every submitted batch has been applied. Called at
// the barrier after the compute workers have joined and before the
// residual drain, the invariant audit, the buffer swap and any
// checkpoint — a snapshot can never observe an in-flight batch.
func (d *shardDrainer[M]) quiesce() { d.pending.Wait() }

// quiesced reports whether no batch is in flight (the checkpoint guard).
func (d *shardDrainer[M]) quiesced() bool { return d.inFlight.Load() == 0 }

// stop closes the queues and waits for the drainer goroutines to exit.
func (d *shardDrainer[M]) stop() {
	if !d.started {
		return
	}
	for _, q := range d.queues {
		close(q)
	}
	d.workers.Wait()
	d.started = false
}

// getBatch returns an empty batch, reusing a recycled one when possible.
func (d *shardDrainer[M]) getBatch() *shardBatch[M] {
	select {
	case b := <-d.free:
		return b
	default:
		return &shardBatch[M]{
			dst: make([]int32, 0, overlapBatchCap),
			msg: make([]M, 0, overlapBatchCap),
		}
	}
}

func (d *shardDrainer[M]) recycle(b *shardBatch[M]) {
	b.reset()
	select {
	case d.free <- b:
	default: // freelist full; let the GC take it
	}
}

func (d *shardDrainer[M]) footprintBytes() uint64 {
	var m M
	per := uint64(overlapBatchCap) * (4 + uint64(unsafe.Sizeof(m)))
	return uint64(cap(d.free)) * per
}
