package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"ipregel/internal/graph"
)

// RecoverySource hands a recovery supervisor the newest usable
// checkpoint. FileSink implements it via LatestGood; tests implement it
// over in-memory buffers.
type RecoverySource interface {
	// Latest returns a reader over the newest good checkpoint and its
	// superstep, found=false when no checkpoint exists yet, or an error
	// when the source itself failed (not when checkpoints are merely
	// corrupt — those are skipped).
	Latest() (r io.ReadCloser, superstep int, found bool, err error)
}

// RecoveryOptions tunes RunWithRecovery.
type RecoveryOptions[V, M any] struct {
	// MaxAttempts bounds the total number of run attempts, the first
	// included (default 3).
	MaxAttempts int
	// Backoff is the sleep before the second attempt, doubling each
	// retry (default 100ms; set Sleep to override how it is spent).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 5s).
	MaxBackoff time.Duration
	// Sleep replaces time.Sleep, letting tests run the backoff schedule
	// without real delays.
	Sleep func(time.Duration)
	// Setup runs on every freshly constructed or restored engine before
	// the attempt starts — the place to register aggregators and
	// observers that Config cannot carry.
	Setup func(e *Engine[V, M]) error
	// AttemptContext derives each attempt's context from the parent
	// (attempt numbering starts at 1). The returned cancel func is
	// called when the attempt ends. Fault injectors hook here to arm
	// per-attempt cancellation; nil uses the parent context directly.
	AttemptContext func(parent context.Context, attempt int) (context.Context, context.CancelFunc)
	// OnRetry is called before each re-attempt with the attempt number
	// that failed and its error — the hook telemetry uses to count
	// recoveries.
	OnRetry func(attempt int, err error)
}

func (o *RecoveryOptions[V, M]) defaults() {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
}

// RunWithRecovery is the crash-recovery supervisor: it runs the program
// to completion, and when an attempt fails — a compute panic, a
// cancelled context, a checkpoint write error — it restores the newest
// good checkpoint from src and retries, with bounded attempts and
// exponential backoff. Each attempt resumes from the last barrier the
// sink committed, so completed supersteps are never recomputed from
// superstep 0 (the standard Pregel checkpoint recovery model).
//
// The returned engine is the one whose run finished (its Value/
// ValuesDense hold the results); the Report is that run's, with
// Report.Attempts and Report.Recoveries recording the supervisor's work.
// Construction and restore errors are fatal — retrying cannot fix a
// program/checkpoint mismatch — and a parent-context cancellation stops
// the supervisor rather than burning attempts.
func RunWithRecovery[V, M any](
	ctx context.Context,
	g *graph.Graph,
	cfg Config,
	prog Program[V, M],
	cp Checkpointer[V, M],
	src RecoverySource,
	opts RecoveryOptions[V, M],
) (*Engine[V, M], Report, error) {
	opts.defaults()
	if src == nil {
		return nil, Report{}, errors.New("core: RunWithRecovery needs a RecoverySource (use the checkpointer's FileSink)")
	}
	backoff := opts.Backoff
	var lastErr error
	for attempt := 1; attempt <= opts.MaxAttempts; attempt++ {
		e, err := buildAttempt(g, cfg, prog, cp, src)
		if err != nil {
			return nil, Report{}, err
		}
		if opts.Setup != nil {
			if err := opts.Setup(e); err != nil {
				return nil, Report{}, fmt.Errorf("core: recovery setup: %w", err)
			}
		}
		attemptCtx := ctx
		var cancel context.CancelFunc
		if opts.AttemptContext != nil {
			attemptCtx, cancel = opts.AttemptContext(ctx, attempt)
		}
		rep, runErr := e.RunContext(attemptCtx)
		if cancel != nil {
			cancel()
		}
		if runErr == nil {
			rep.Attempts = attempt
			rep.Recoveries = attempt - 1
			e.report.Attempts = rep.Attempts
			e.report.Recoveries = rep.Recoveries
			return e, rep, nil
		}
		lastErr = runErr
		if ctx.Err() != nil {
			// The parent context is gone: the operator stopped the whole
			// computation, not one attempt.
			return e, rep, fmt.Errorf("core: recovery stopped, parent context done: %w", runErr)
		}
		if attempt < opts.MaxAttempts {
			if opts.OnRetry != nil {
				opts.OnRetry(attempt, runErr)
			}
			opts.Sleep(backoff)
			backoff *= 2
			if backoff > opts.MaxBackoff {
				backoff = opts.MaxBackoff
			}
		}
	}
	return nil, Report{}, fmt.Errorf("core: run failed after %d attempts: %w", opts.MaxAttempts, lastErr)
}

// buildAttempt constructs one attempt's engine: restored from the newest
// good checkpoint when one exists, fresh otherwise, the checkpointer
// installed either way.
func buildAttempt[V, M any](
	g *graph.Graph,
	cfg Config,
	prog Program[V, M],
	cp Checkpointer[V, M],
	src RecoverySource,
) (*Engine[V, M], error) {
	r, _, found, err := src.Latest()
	if err != nil {
		return nil, fmt.Errorf("core: recovery source: %w", err)
	}
	var e *Engine[V, M]
	if found {
		e, err = Restore(r, g, cfg, prog, cp.VCodec, cp.MCodec)
		cerr := r.Close()
		if err != nil {
			return nil, fmt.Errorf("core: recovery restore: %w", err)
		}
		if cerr != nil {
			return nil, fmt.Errorf("core: recovery restore: %w", cerr)
		}
	} else {
		e, err = New(g, cfg, prog)
		if err != nil {
			return nil, err
		}
	}
	if err := e.SetCheckpointer(cp); err != nil {
		return nil, err
	}
	return e, nil
}
