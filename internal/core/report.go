package core

import (
	"fmt"
	"strings"
	"time"
)

// StepStats records one superstep's activity, the quantities the paper's
// §7.2 analysis reasons about (ratio of active vertices, message volume).
type StepStats struct {
	// Ran is the number of vertices executed this superstep.
	Ran int64
	// Messages is the number of Send calls (push) or buffered broadcasts
	// (pull) issued this superstep.
	Messages uint64
	// Active is the number of vertices still active after the superstep.
	Active int64
	// LocalCombines counts sends that were merged inside a worker's
	// combining cache (Config.SenderCombining) and therefore never
	// touched the shared mailbox — the lock/CAS traffic the feature
	// removed this superstep. Always 0 when sender combining is off.
	LocalCombines uint64
	// CASRetries counts failed compare-and-swap attempts in the atomic
	// mailbox this superstep (value-word combine retries plus lost
	// empty-slot claims) — the live contention signal. Always 0 for the
	// lock-based and pull combiners.
	CASRetries uint64
	// NextFrontier is the size of the next superstep's frontier under
	// selection bypass (0 when bypass is off): how many vertices received
	// a message and will run next.
	NextFrontier int64
	// ShardMessages counts the deliveries routed to each shard this
	// superstep, indexed by shard (len = Config.Shards; nil on
	// single-shard runs). The sum over shards equals Messages for the
	// push combiners.
	ShardMessages []uint64
	// ShardNextFrontier is the per-shard next-frontier size under
	// selection bypass on a sharded engine (nil otherwise); the sum over
	// shards equals NextFrontier.
	ShardNextFrontier []int64
	// CrossShardMessages counts the sends whose destination shard
	// differed from the sending vertex's shard — the traffic the routing
	// layer batches at the barrier. Always 0 on single-shard runs.
	CrossShardMessages uint64
	// EarlyDeliveredBatches counts the eviction batches handed to shard
	// drainers during the compute phase (Config.OverlapDelivery) — the
	// deliveries that no longer wait for the barrier. Always 0 when
	// overlap is off or the engine is single-shard.
	EarlyDeliveredBatches uint64
	// StolenTasks counts the (shard, slot-range) spans a worker executed
	// out of another worker's queue (Config.WorkStealing) — how much the
	// dynamic scheduler rebalanced beyond the static shard affinity.
	// Always 0 when stealing is off or the engine is single-shard.
	StolenTasks int64
	// SkippedShards counts the shards the compute phase dropped entirely
	// this superstep because nothing in them could run: no active vertex
	// and no delivery last superstep (under selection bypass, an empty
	// shard frontier). Always 0 on single-shard runs.
	SkippedShards int64
	// Direction is the transport this superstep's sends travelled: push
	// (deliveries at send time) or pull (outbox buffering, collect-phase
	// fan-out). Fixed for the whole run except under Config.Direction
	// adaptive, which decides per superstep from the frontier density.
	Direction Direction
	// DirectionSwitched marks a superstep whose direction differs from
	// the previous superstep's — the adaptive switch events
	// ipregel_direction_switches_total counts. Always false on a run's
	// first superstep (a resumed run restarts the comparison).
	DirectionSwitched bool
	// HubSplitTasks counts the scatter chunks hub splitting fanned out
	// this superstep (Config.HubSplit); 0 when off or when no broadcast
	// crossed the degree cut.
	HubSplitTasks int64
	// Duration is the wall-clock time of the superstep.
	Duration time.Duration
	// WorkerBusy holds each worker's busy time this superstep when
	// Config.TrackWorkerTime is set (nil otherwise).
	WorkerBusy []time.Duration
	// Partial marks a record appended by an abort path for a superstep
	// that did not run to completion (a contained compute panic, an
	// invariant violation): the counts are what the workers had delivered
	// when the run stopped, recorded so the report's totals stay
	// consistent with the engine's actual activity.
	Partial bool
}

// Imbalance returns max/mean of the workers' busy times (1 = perfectly
// balanced; 0 when untracked or idle).
func (s StepStats) Imbalance() float64 {
	if len(s.WorkerBusy) == 0 {
		return 0
	}
	var sum, max time.Duration
	for _, b := range s.WorkerBusy {
		sum += b
		if b > max {
			max = b
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.WorkerBusy))
	return float64(max) / mean
}

// ShardImbalance returns max/mean of the per-shard delivery counts
// (1 = perfectly balanced; 0 on single-shard runs or message-free
// supersteps) — the partition-quality analogue of Imbalance.
func (s StepStats) ShardImbalance() float64 {
	if len(s.ShardMessages) == 0 {
		return 0
	}
	var sum, max uint64
	for _, n := range s.ShardMessages {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.ShardMessages))
	return float64(max) / mean
}

// Report summarises one engine run. It is internally consistent on
// every exit path, aborted or converged: TotalMessages and
// TotalLocalCombines always equal the sums over Steps, and Duration
// covers exactly the supersteps Steps records (plus any trailing
// partial one).
type Report struct {
	// Version is the Fig. 7 legend name of the configuration, e.g.
	// "spinlock+bypass".
	Version string
	// FirstSuperstep is the absolute number of the first superstep this
	// run executed: 0 for a fresh engine, the checkpoint barrier for an
	// engine built by Restore. Steps[i] describes absolute superstep
	// FirstSuperstep+i, so statistics from a resumed run never collide
	// with the original run's.
	FirstSuperstep int
	// Supersteps is the absolute superstep counter at the end of the run:
	// FirstSuperstep plus the number of completed supersteps (a trailing
	// Partial step record is not counted). For a fresh, converged run it
	// is simply the number of supersteps executed.
	Supersteps int
	// TotalMessages counts all messages sent across the run.
	TotalMessages uint64
	// TotalLocalCombines counts the sends absorbed by the workers'
	// combining caches across the run (see StepStats.LocalCombines);
	// TotalMessages - TotalLocalCombines deliveries reached the shared
	// mailbox.
	TotalLocalCombines uint64
	// Duration is the superstep execution time — like the paper's
	// methodology it excludes graph loading and preprocessing (§7.1.2).
	Duration time.Duration
	// Converged is true only when the run ended because no vertex was
	// active and no message was in flight.
	Converged bool
	// Aborted is true when the run stopped for any other reason:
	// cancellation, ErrMaxSupersteps, a compute panic, a bypass
	// violation, an invariant failure, or a checkpoint error.
	Aborted bool
	// AbortReason is the abort error's text (empty when Converged).
	AbortReason string
	// Attempts is the number of run attempts a recovery supervisor made
	// to produce this report: 1 for a run that needed no recovery, and
	// always ≥1 when set by RunWithRecovery. 0 means the run was started
	// directly via Run/RunContext with no supervisor.
	Attempts int
	// Recoveries is the number of checkpoint-based resumes the recovery
	// supervisor performed before this report's run finished
	// (Attempts-1 when Attempts is set).
	Recoveries int
	// Steps holds per-superstep statistics; Steps[i] is absolute
	// superstep FirstSuperstep+i.
	Steps []StepStats
}

// String renders a one-line summary. Aborted runs are marked so that a
// failed run's log line cannot be mistaken for a clean one.
func (r Report) String() string {
	s := fmt.Sprintf("%-18s supersteps=%-6d msgs=%-12d time=%v", r.Version, r.Supersteps, r.TotalMessages, r.Duration.Round(time.Microsecond))
	if r.Recoveries > 0 {
		s += fmt.Sprintf(" recoveries=%d", r.Recoveries)
	}
	if r.Aborted {
		s += fmt.Sprintf(" ABORTED (%s)", r.AbortReason)
	}
	return s
}

// ActiveSeries returns the per-superstep active-vertex counts, the curve
// the paper uses to characterise PageRank (flat), Hashmin (decreasing)
// and SSSP (bell) in §7.1.4.
func (r Report) ActiveSeries() []int64 {
	out := make([]int64, len(r.Steps))
	for i, s := range r.Steps {
		out[i] = s.Active
	}
	return out
}

// RanSeries returns the per-superstep executed-vertex counts.
func (r Report) RanSeries() []int64 {
	out := make([]int64, len(r.Steps))
	for i, s := range r.Steps {
		out[i] = s.Ran
	}
	return out
}

// LoadImbalance averages StepStats.Imbalance over the supersteps that
// recorded worker times (1 = perfectly balanced; 0 when untracked).
func (r Report) LoadImbalance() float64 {
	var sum float64
	n := 0
	for _, s := range r.Steps {
		if im := s.Imbalance(); im > 0 {
			sum += im
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fingerprint renders the deterministic skeleton of the run as one
// comparable string: superstep counts, message totals and the
// per-superstep ran/messages/active/next-frontier series. Two runs of the
// same program on the same graph must produce equal fingerprints
// regardless of thread count, combiner, sharding, scheduling mode or
// graph backend (flat, compressed, mmap) — this is what the backend
// parity battery asserts. Timing- and contention-dependent fields
// (Duration, CASRetries, StolenTasks, EarlyDeliveredBatches,
// LocalCombines, WorkerBusy, SkippedShards, Attempts/Recoveries) are
// deliberately excluded: they legitimately vary between equivalent runs.
// Direction/DirectionSwitched/HubSplitTasks are excluded too — they
// describe HOW a superstep's messages travelled, and the whole point of
// the direction model is that push-only, pull-only and adaptive runs
// produce equal fingerprints.
func (r Report) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "first=%d supersteps=%d msgs=%d converged=%v aborted=%v\n",
		r.FirstSuperstep, r.Supersteps, r.TotalMessages, r.Converged, r.Aborted)
	for i, s := range r.Steps {
		fmt.Fprintf(&b, "step %d: ran=%d msgs=%d active=%d next=%d partial=%v\n",
			r.FirstSuperstep+i, s.Ran, s.Messages, s.Active, s.NextFrontier, s.Partial)
	}
	return b.String()
}

// Table renders the per-superstep statistics for debugging. Superstep
// numbers are absolute (FirstSuperstep + row index), a trailing partial
// record is marked, and an aborted run carries a final line naming the
// abort reason.
func (r Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "superstep %8s %12s %8s %12s\n", "ran", "messages", "active", "time")
	for i, s := range r.Steps {
		fmt.Fprintf(&b, "%9d %8d %12d %8d %12v", r.FirstSuperstep+i, s.Ran, s.Messages, s.Active, s.Duration.Round(time.Microsecond))
		if s.Partial {
			b.WriteString(" (partial)")
		}
		b.WriteByte('\n')
	}
	if r.Aborted {
		fmt.Fprintf(&b, "aborted: %s\n", r.AbortReason)
	}
	return b.String()
}
