package core

import (
	"fmt"
	"sync/atomic"
)

// InvariantError reports a violated engine invariant detected by the
// Config.CheckInvariants runtime audit. It always indicates a framework
// bug (or memory corruption), never a user-program mistake: user mistakes
// surface as ordinary errors (ErrBypassViolation, construction errors) or
// as the contained panics Run reports.
type InvariantError struct {
	// Superstep is the superstep at whose barrier the violation was seen.
	Superstep int
	// Invariant names the broken invariant ("mailbox-state",
	// "frontier-dedup", "message-conservation").
	Invariant string
	// Detail describes the violation.
	Detail string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("core: invariant %q violated at superstep %d: %s", e.Invariant, e.Superstep, e.Detail)
}

// auditInvariants is the Config.CheckInvariants barrier audit. It runs
// single-threaded after every worker has joined the compute barrier (and
// after the sender caches drained and the frontier was gathered) but
// before the mailbox buffer swap, so the "next" side still holds this
// superstep's deliveries.
func (e *Engine[V, M]) auditInvariants() error {
	if e.panicked.Load() != nil {
		// A worker died mid-phase; its counters are incomplete and every
		// check below could fire spuriously. Run reports the panic.
		return nil
	}
	for _, sh := range e.shards {
		if err := sh.mb.auditBarrier(); err != nil {
			return &InvariantError{Superstep: e.superstep, Invariant: "mailbox-state", Detail: err.Error()}
		}
	}
	if err := e.auditConservation(); err != nil {
		return err
	}
	if e.cfg.SelectionBypass {
		if err := e.auditFrontierDedup(); err != nil {
			return err
		}
	}
	return nil
}

// auditConservation checks that every Send this superstep is accounted
// for: it was either absorbed by a worker's combining cache, combined into
// an occupied shared mailbox, or filled an empty one. The LEGACY pull
// combiner is exempt — its Messages count buffered broadcasts, whose
// fan-out happens at collect time and is graph-dependent rather than
// send-conserving. Hybrid pull supersteps (Config.Direction) are NOT
// exempt: they count Messages as the logical fan-out (out-degree per
// broadcast) and the collect phase deposits exactly that many entries
// through the counted deliver path, so the same formula holds — and
// additionally pins the broadcast-at-most-once-per-superstep contract
// the outbox-overwrite semantics require.
func (e *Engine[V, M]) auditConservation() error {
	defer func() {
		for _, sh := range e.shards {
			sh.mb.resetDeliveryCounts()
		}
	}()
	if e.mb != nil && e.mb.usesPull() {
		return nil
	}
	var sent, local uint64
	for _, w := range e.workers {
		sent += w.msgs
		if w.cache != nil {
			local += w.cache.combined
		}
		if w.route != nil {
			local += w.route.combined
		}
	}
	var combines, fills uint64
	for _, sh := range e.shards {
		c, f := sh.mb.deliveryCounts()
		combines += c
		fills += f
	}
	if sent != local+combines+fills {
		return &InvariantError{
			Superstep: e.superstep,
			Invariant: "message-conservation",
			Detail: fmt.Sprintf("sent %d != local combines %d + mailbox combines %d + mailbox fills %d (= %d); a delivery was lost or double-counted",
				sent, local, combines, fills, local+combines+fills),
		}
	}
	return nil
}

// auditFrontierDedup checks the selection-bypass dedup flags against the
// gathered next frontier: every enrolled slot must appear exactly once,
// and every set flag must correspond to an enrolled slot. A duplicate
// would run a vertex twice next superstep; a stray flag would silently
// suppress a future enrolment (§4's correctness hinges on exactly-once
// membership).
func (e *Engine[V, M]) auditFrontierDedup() error {
	if e.nShards > 1 {
		return e.auditFrontierDedupSharded()
	}
	if e.auditSeen == nil {
		e.auditSeen = make([]uint8, e.slots)
	} else {
		clear(e.auditSeen)
	}
	for _, slot := range e.frontierNext {
		if e.auditSeen[slot] != 0 {
			return &InvariantError{
				Superstep: e.superstep,
				Invariant: "frontier-dedup",
				Detail:    fmt.Sprintf("vertex %d enrolled twice in the next frontier", e.addr.idOf(int(slot))),
			}
		}
		e.auditSeen[slot] = 1
		if atomic.LoadUint32(&e.inNext[slot]) == 0 {
			return &InvariantError{
				Superstep: e.superstep,
				Invariant: "frontier-dedup",
				Detail:    fmt.Sprintf("vertex %d is in the next frontier but its dedup flag is clear", e.addr.idOf(int(slot))),
			}
		}
	}
	var flagged uint64
	for i := range e.inNext {
		if atomic.LoadUint32(&e.inNext[i]) != 0 {
			flagged++
		}
	}
	if flagged != uint64(len(e.frontierNext)) {
		return &InvariantError{
			Superstep: e.superstep,
			Invariant: "frontier-dedup",
			Detail:    fmt.Sprintf("%d dedup flags set but %d vertices enrolled; a flag leaked without an enrolment", flagged, len(e.frontierNext)),
		}
	}
	return nil
}

// auditFrontierDedupSharded applies the same exactly-once check per
// shard: enrolled local slots are deduplicated against a global scratch
// array (translated through the partitioner) and each shard's flag
// count must equal its enrolments.
func (e *Engine[V, M]) auditFrontierDedupSharded() error {
	if e.auditSeen == nil {
		e.auditSeen = make([]uint8, e.slots)
	} else {
		clear(e.auditSeen)
	}
	for s, sh := range e.shards {
		for _, local := range sh.frontierNext {
			slot := e.part.globalOf(s, int(local))
			if e.auditSeen[slot] != 0 {
				return &InvariantError{
					Superstep: e.superstep,
					Invariant: "frontier-dedup",
					Detail:    fmt.Sprintf("vertex %d enrolled twice in the next frontier", e.addr.idOf(slot)),
				}
			}
			e.auditSeen[slot] = 1
			if atomic.LoadUint32(&sh.inNext[local]) == 0 {
				return &InvariantError{
					Superstep: e.superstep,
					Invariant: "frontier-dedup",
					Detail:    fmt.Sprintf("vertex %d is in the next frontier but its dedup flag is clear", e.addr.idOf(slot)),
				}
			}
		}
		var flagged uint64
		for i := range sh.inNext {
			if atomic.LoadUint32(&sh.inNext[i]) != 0 {
				flagged++
			}
		}
		if flagged != uint64(len(sh.frontierNext)) {
			return &InvariantError{
				Superstep: e.superstep,
				Invariant: "frontier-dedup",
				Detail:    fmt.Sprintf("shard %d: %d dedup flags set but %d vertices enrolled; a flag leaked without an enrolment", s, flagged, len(sh.frontierNext)),
			}
		}
	}
	return nil
}
