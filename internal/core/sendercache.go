package core

import "unsafe"

// senderCache is a worker-local direct-mapped combining cache enabled by
// Config.SenderCombining: slot → one pending pre-combined message. Sends
// to a destination already cached combine worker-locally — no shared
// cache line is touched at all — so the per-message lock/CAS cost of the
// push combiners is paid once per (worker, hot destination) instead of
// once per message. Entries reach the shared mailbox on eviction (a
// colliding destination claims the cache line) and at the compute-phase
// barrier drain. On power-law graphs the high-in-degree hubs that
// serialise locked delivery are exactly the destinations that hit the
// cache, which is what makes the scheme pay.
//
// Each Context owns one senderCache, so its methods need no
// synchronisation; only the deliver calls it issues hit shared memory.
type senderCache[M any] struct {
	combine CombineFunc[M]
	dst     []int32 // destination slot per entry; -1 = empty
	msg     []M
	// combined counts sends merged worker-locally this superstep (the
	// deliveries the shared mailbox never saw), reported via
	// StepStats.LocalCombines.
	combined uint64
}

// senderCacheBits sizes the cache at 1<<senderCacheBits entries (512 ×
// (4 B + one message) per worker — small enough to live in L1/L2).
const senderCacheBits = 9

func newSenderCache[M any](combine CombineFunc[M]) *senderCache[M] {
	c := &senderCache[M]{
		combine: combine,
		dst:     make([]int32, 1<<senderCacheBits),
		msg:     make([]M, 1<<senderCacheBits),
	}
	for i := range c.dst {
		c.dst[i] = -1
	}
	return c
}

// index maps a destination slot to its cache entry (Fibonacci hashing, so
// regular slot strides do not collapse onto few entries).
func (c *senderCache[M]) index(slot int) int {
	return int((uint64(slot) * 0x9E3779B97F4A7C15) >> (64 - senderCacheBits))
}

// add routes one send through the cache, forwarding an evicted entry to mb.
func (c *senderCache[M]) add(slot int, msg M, mb mailbox[M]) {
	i := c.index(slot)
	switch {
	case c.dst[i] == int32(slot):
		c.combine(&c.msg[i], msg)
		c.combined++
	case c.dst[i] < 0:
		c.dst[i] = int32(slot)
		c.msg[i] = msg
	default: // conflict: evict the resident entry to the shared mailbox
		mb.deliver(int(c.dst[i]), c.msg[i])
		c.dst[i] = int32(slot)
		c.msg[i] = msg
	}
}

// drain flushes every pending entry to the shared mailbox; the engine
// calls it at the compute-phase barrier, before the buffer swap.
func (c *senderCache[M]) drain(mb mailbox[M]) {
	for i, d := range c.dst {
		if d >= 0 {
			mb.deliver(int(d), c.msg[i])
			c.dst[i] = -1
		}
	}
}

// footprintBytes reports the cache's heap bytes for the §7.4 accounting.
func (c *senderCache[M]) footprintBytes() uint64 {
	var m M
	return uint64(len(c.dst))*4 + uint64(len(c.msg))*uint64(unsafe.Sizeof(m))
}
