package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"

	"ipregel/internal/graph"
)

// atomicMailbox is the lock-free push combiner the follow-up iPregel work
// adopts ("Vertex-centric programmability vs memory efficiency and
// performance, why choose?"): instead of guarding each mailbox with a
// per-vertex lock, delivery combines into the mailbox word with a
// compare-and-swap retry loop. The message must therefore fit a machine
// word; eligibility is decided once at engine construction by a type
// switch over the supported numeric types (no reflection on the hot path),
// and the bit conversion is a width-dispatched unsafe reinterpretation.
//
// Per-slot state machine (stateNext):
//
//	slotEmpty --CAS--> slotBusy --store value, store state--> slotFull
//
// Once a slot is slotFull it stays so for the rest of the superstep and
// every further delivery is a pure load/combine/CAS loop on the value
// word — no lock bytes, no blocked senders. The only waiting window is
// slotBusy, the two stores between a first deliverer winning the empty
// slot and publishing its value; concurrent first-deliveries to the same
// virgin slot spin through it (bounded, then Gosched).
type atomicMailbox[M any] struct {
	combine CombineFunc[M]
	// now holds the current superstep's payload bits; read single-threaded
	// after the barrier, so plain access is the protocol.
	now []uint64
	// next collects this superstep's deliveries. Concurrent senders CAS
	// its elements, so every element access must go through sync/atomic.
	//
	//ipregel:atomic
	next []uint64
	// stateNow is the current buffer's occupancy (slotEmpty/slotFull);
	// barrier-ordered plain access, like now.
	stateNow []uint32
	// stateNext is the delivery-side occupancy state machine
	// (slotEmpty/slotBusy/slotFull); element access must be atomic.
	//
	//ipregel:atomic
	stateNext []uint32
	// wide selects 8-byte bit conversion (4-byte otherwise)
	wide bool
	// check enables the delivery counters (Config.CheckInvariants).
	check             bool
	nCombines, nFills uint64
	// nRetries counts failed CAS attempts (value-word combine retries and
	// lost empty-slot claims). Unlike the delivery counters it is always
	// maintained: the increments sit exclusively on the already-contended
	// failure paths, so the uncontended fast path pays nothing, and the
	// telemetry layer reads it live as the contention signal.
	nRetries uint64
}

const (
	slotEmpty uint32 = iota
	slotBusy
	slotFull
)

// atomicWidth reports whether M is one of the word-sized message types the
// CAS combiner supports, and whether it needs the 8-byte conversion.
func atomicWidth[M any]() (wide bool, err error) {
	var zero M
	switch any(zero).(type) {
	case int64, uint64, float64:
		return true, nil
	case int32, uint32, float32:
		return false, nil
	}
	return false, fmt.Errorf("core: the atomic combiner packs each mailbox into one machine word and supports int32, uint32, float32, int64, uint64 and float64 messages; message type %T does not qualify — pick the mutex or spinlock combiner", zero)
}

func newAtomicMailbox[M any](slots int, combine CombineFunc[M], check bool) (*atomicMailbox[M], error) {
	wide, err := atomicWidth[M]()
	if err != nil {
		return nil, err
	}
	return &atomicMailbox[M]{
		combine:   combine,
		now:       make([]uint64, slots),
		next:      make([]uint64, slots),
		stateNow:  make([]uint32, slots),
		stateNext: make([]uint32, slots),
		wide:      wide,
		check:     check,
	}, nil
}

func (mb *atomicMailbox[M]) bits(m M) uint64 {
	if mb.wide {
		return *(*uint64)(unsafe.Pointer(&m))
	}
	return uint64(*(*uint32)(unsafe.Pointer(&m)))
}

func (mb *atomicMailbox[M]) value(b uint64) M {
	var m M
	if mb.wide {
		*(*uint64)(unsafe.Pointer(&m)) = b
	} else {
		*(*uint32)(unsafe.Pointer(&m)) = uint32(b)
	}
	return m
}

func (mb *atomicMailbox[M]) deliver(dst int, msg M) {
	state := &mb.stateNext[dst]
	word := &mb.next[dst]
	for spins := 0; ; {
		switch atomic.LoadUint32(state) {
		case slotFull:
			for {
				oldBits := atomic.LoadUint64(word)
				cur := mb.value(oldBits)
				mb.combine(&cur, msg)
				newBits := mb.bits(cur)
				if newBits == oldBits {
					// combine left the mailbox unchanged (e.g. min with a
					// larger candidate): nothing to publish
					mb.countCombine()
					return
				}
				if atomic.CompareAndSwapUint64(word, oldBits, newBits) {
					mb.countCombine()
					return
				}
				atomic.AddUint64(&mb.nRetries, 1)
			}
		case slotEmpty:
			if atomic.CompareAndSwapUint32(state, slotEmpty, slotBusy) {
				atomic.StoreUint64(word, mb.bits(msg))
				atomic.StoreUint32(state, slotFull)
				if mb.check {
					atomic.AddUint64(&mb.nFills, 1)
				}
				return
			}
			atomic.AddUint64(&mb.nRetries, 1)
		default: // slotBusy: the first deliverer is publishing its value
			spins++
			if spins%spinTries == 0 {
				runtime.Gosched()
			}
		}
	}
}

// The read side below runs after the superstep barrier (take/hasCurrent by
// the slot's owner, peek/restoreCurrent/swap by the coordinator), so plain
// accesses suffice: the barrier orders them after every atomic delivery.

func (mb *atomicMailbox[M]) take(slot int, m *M) bool {
	if mb.stateNow[slot] != slotFull {
		return false
	}
	*m = mb.value(mb.now[slot])
	mb.stateNow[slot] = slotEmpty
	return true
}

func (mb *atomicMailbox[M]) hasCurrent(slot int) bool { return mb.stateNow[slot] == slotFull }

func (mb *atomicMailbox[M]) peek(slot int) (M, bool) {
	var m M
	if mb.stateNow[slot] != slotFull {
		return m, false
	}
	return mb.value(mb.now[slot]), true
}

func (mb *atomicMailbox[M]) restoreCurrent(slot int, m M) {
	mb.now[slot] = mb.bits(m)
	mb.stateNow[slot] = slotFull
}

func (mb *atomicMailbox[M]) swap() {
	clear(mb.stateNow) // drop stale occupancy of vertices that never drained
	mb.now, mb.next = mb.next, mb.now
	mb.stateNow, mb.stateNext = mb.stateNext, mb.stateNow
}

func (mb *atomicMailbox[M]) setOutbox(int, M) {
	panic("core: broadcast outbox used with a push combiner")
}
func (mb *atomicMailbox[M]) collectInto(int, *graph.NeighborBuf) {
	panic("core: collect phase used with a push combiner")
}
func (mb *atomicMailbox[M]) clearOutboxes() {}
func (mb *atomicMailbox[M]) usesPull() bool { return false }

func (mb *atomicMailbox[M]) countCombine() {
	if mb.check {
		atomic.AddUint64(&mb.nCombines, 1)
	}
}

func (mb *atomicMailbox[M]) deliveryCounts() (combines, fills uint64) {
	return atomic.LoadUint64(&mb.nCombines), atomic.LoadUint64(&mb.nFills)
}

func (mb *atomicMailbox[M]) resetDeliveryCounts() {
	atomic.StoreUint64(&mb.nCombines, 0)
	atomic.StoreUint64(&mb.nFills, 0)
}

func (mb *atomicMailbox[M]) contentionRetries() uint64 {
	return atomic.LoadUint64(&mb.nRetries)
}

// auditBarrier verifies the per-slot state machine settled: once every
// worker has joined the barrier, no slot may remain slotBusy — a busy slot
// here means a deliverer won the empty→busy CAS and vanished before
// publishing, which would hang the next superstep's senders.
func (mb *atomicMailbox[M]) auditBarrier() error {
	for i := range mb.stateNext {
		if atomic.LoadUint32(&mb.stateNext[i]) == slotBusy {
			return fmt.Errorf("atomic mailbox slot %d stuck in slotBusy at the barrier: a delivery won the empty slot but never published its value", i)
		}
	}
	return nil
}

// footprintBytes: the value word is always 8 bytes (even for 4-byte
// messages) plus a 4-byte state per slot and buffer — zero lock bytes, the
// trade the journal version makes against the 4-byte spinlock.
func (mb *atomicMailbox[M]) footprintBytes() uint64 {
	slots := uint64(len(mb.now))
	return slots*2*8 + slots*2*4
}
