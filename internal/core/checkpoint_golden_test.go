package core

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/checkpoint_v2.golden from the current writer")

// goldenProg is ssspProg plus two aggregators, so the fixture exercises
// every v2 section: values, activity, mailboxes, the bypass frontier and
// a multi-entry aggregator table.
func goldenProg() Program[uint32, uint32] {
	base := ssspProg(1)
	return Program[uint32, uint32]{
		Combine: base.Combine,
		Compute: func(ctx *Context[uint32, uint32], v Vertex[uint32, uint32]) {
			ctx.Aggregate("ran", 1)
			base.Compute(ctx, v)
			ctx.Aggregate("min-dist", float64(*v.Value()))
		},
	}
}

func goldenConfig() Config {
	// Single-threaded, spinlock, bypass: every byte of the barrier state
	// is deterministic, so the fixture can be compared byte-for-byte.
	return Config{Combiner: CombinerSpin, Threads: 1, SelectionBypass: true}
}

func goldenEngine(t testing.TB) *Engine[uint32, uint32] {
	t.Helper()
	e, err := New(gridForCheckpoint(t), goldenConfig(), goldenProg())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterAggregator("ran", AggSum); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterAggregator("min-dist", AggMin); err != nil {
		t.Fatal(err)
	}
	return e
}

// goldenCheckpoint runs the golden engine and returns the checkpoint
// taken at barrier 4 (mid-run: non-trivial values, mail in flight, a
// non-empty frontier, aggregator state from barrier 3).
func goldenCheckpoint(t testing.TB) []byte {
	t.Helper()
	e := goldenEngine(t)
	var dump []byte
	if err := e.SetCheckpointer(Checkpointer[uint32, uint32]{
		Every: 4,
		Sink: func(s int) (io.Writer, error) {
			if s != 4 {
				return io.Discard, nil
			}
			return writerFunc(func(p []byte) (int, error) {
				dump = append(dump, p...)
				return len(p), nil
			}), nil
		},
		VCodec: u32Codec{}, MCodec: u32Codec{},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(dump) == 0 {
		t.Fatal("no checkpoint captured at barrier 4")
	}
	return dump
}

const goldenPath = "testdata/checkpoint_v2.golden"

// TestCheckpointV2Golden pins the on-disk format: the writer must
// reproduce the checked-in fixture byte for byte. Accidental format
// drift — reordered sections, a changed header field, a different CRC
// polynomial — fails here instead of silently orphaning old checkpoints.
// Deliberate format changes bump the magic to a new version and add a
// new fixture; they do not rewrite this one.
func TestCheckpointV2Golden(t *testing.T) {
	got := goldenCheckpoint(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing fixture (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		limit := len(got)
		if len(want) < limit {
			limit = len(want)
		}
		for i := 0; i < limit; i++ {
			if got[i] != want[i] {
				t.Fatalf("checkpoint v2 format drift: byte %d = %#02x, fixture has %#02x (lengths %d vs %d)", i, got[i], want[i], len(got), len(want))
			}
		}
		t.Fatalf("checkpoint v2 format drift: length %d, fixture %d", len(got), len(want))
	}
}

// TestCheckpointV2GoldenRestores proves the fixture is live: restoring
// it and finishing the run must match an uninterrupted run exactly.
func TestCheckpointV2GoldenRestores(t *testing.T) {
	fixture, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing fixture (run with -update-golden to create): %v", err)
	}
	refE := goldenEngine(t)
	refRep, err := refE.Run()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(bytes.NewReader(fixture), gridForCheckpoint(t), goldenConfig(), goldenProg(), u32Codec{}, u32Codec{})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RegisterAggregator("ran", AggSum); err != nil {
		t.Fatal(err)
	}
	if err := restored.RegisterAggregator("min-dist", AggMin); err != nil {
		t.Fatal(err)
	}
	rep, err := restored.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FirstSuperstep != 4 || rep.Supersteps != refRep.Supersteps {
		t.Fatalf("fixture resumed %d→%d, reference ended at %d", rep.FirstSuperstep, rep.Supersteps, refRep.Supersteps)
	}
	got, want := restored.ValuesDense(), refE.ValuesDense()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fixture resume: dist[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
