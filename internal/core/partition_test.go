package core

import (
	"testing"
)

// TestPartitionerRoundTrip is the partition-layer property test: for every
// (slot count, shard count, partition kind) combination, locate and
// globalOf must be mutual inverses, every shard's local slots must be
// dense [0, localSlots), and the localSlots must sum to the global slot
// count.
func TestPartitionerRoundTrip(t *testing.T) {
	for _, slots := range []int{1, 2, 3, 7, 8, 63, 64, 65, 1000} {
		for _, shards := range []int{1, 2, 3, 4, 7, 8} {
			if shards > slots {
				continue
			}
			for _, kind := range []Partition{PartitionRange, PartitionHash} {
				cfg := Config{Shards: shards, Partition: kind}
				p, err := newPartitioner(cfg, slots)
				if err != nil {
					t.Fatalf("slots=%d shards=%d %v: %v", slots, shards, kind, err)
				}
				if p.shards() != shards {
					t.Fatalf("slots=%d shards=%d %v: shards() = %d", slots, shards, kind, p.shards())
				}
				sum := 0
				for s := 0; s < shards; s++ {
					sum += p.localSlots(s)
				}
				if sum != slots {
					t.Fatalf("slots=%d shards=%d %v: localSlots sum to %d", slots, shards, kind, sum)
				}
				// locate → globalOf round trip, plus density: each local
				// index must be hit exactly once per shard.
				seen := make([]int, shards)
				for slot := 0; slot < slots; slot++ {
					s, local := p.locate(slot)
					if s < 0 || s >= shards {
						t.Fatalf("slots=%d shards=%d %v: locate(%d) shard %d out of range", slots, shards, kind, slot, s)
					}
					if local < 0 || local >= p.localSlots(s) {
						t.Fatalf("slots=%d shards=%d %v: locate(%d) local %d out of [0,%d)", slots, shards, kind, slot, local, p.localSlots(s))
					}
					if back := p.globalOf(s, local); back != slot {
						t.Fatalf("slots=%d shards=%d %v: globalOf(locate(%d)) = %d", slots, shards, kind, slot, back)
					}
					seen[s]++
				}
				for s := 0; s < shards; s++ {
					if seen[s] != p.localSlots(s) {
						t.Fatalf("slots=%d shards=%d %v: shard %d saw %d slots, localSlots says %d", slots, shards, kind, s, seen[s], p.localSlots(s))
					}
				}
			}
		}
	}
}

// TestRangePartitionerContiguity pins the range partitioner's defining
// property: each shard owns a contiguous slot interval and locate is
// monotone, so the O(1) slot*t/n shard arithmetic agrees with the cuts.
func TestRangePartitionerContiguity(t *testing.T) {
	for _, slots := range []int{8, 65, 1000} {
		for _, shards := range []int{2, 3, 8} {
			p, err := newPartitioner(Config{Shards: shards}, slots)
			if err != nil {
				t.Fatal(err)
			}
			prevShard, prevLocal := 0, -1
			for slot := 0; slot < slots; slot++ {
				s, local := p.locate(slot)
				switch {
				case s == prevShard:
					if local != prevLocal+1 {
						t.Fatalf("slots=%d shards=%d: slot %d local %d after %d (not contiguous)", slots, shards, slot, local, prevLocal)
					}
				case s == prevShard+1:
					if local != 0 {
						t.Fatalf("slots=%d shards=%d: shard %d starts at local %d", slots, shards, s, local)
					}
				default:
					t.Fatalf("slots=%d shards=%d: shard jumped %d -> %d", slots, shards, prevShard, s)
				}
				prevShard, prevLocal = s, local
			}
		}
	}
}

// TestSinglePartitionerIsIdentity pins the nShards==1 fast path: the
// partition layer must add zero overhead and zero translation, because
// the whole single-shard equivalence guarantee rests on it.
func TestSinglePartitionerIsIdentity(t *testing.T) {
	p, err := newPartitioner(Config{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(singlePartitioner); !ok {
		t.Fatalf("Shards unset built %T, want singlePartitioner", p)
	}
	if p.overheadBytes() != 0 {
		t.Fatalf("single partitioner overhead = %d, want 0", p.overheadBytes())
	}
	for _, slot := range []int{0, 1, 57, 99} {
		if s, local := p.locate(slot); s != 0 || local != slot {
			t.Fatalf("locate(%d) = (%d, %d), want (0, %d)", slot, s, local, slot)
		}
	}
	// Shards: 1 is the same as unset.
	p1, err := newPartitioner(Config{Shards: 1, Partition: PartitionHash}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p1.(singlePartitioner); !ok {
		t.Fatalf("Shards=1 built %T, want singlePartitioner", p1)
	}
}

// TestDesolateShardedRoundTrip covers the desolate-addressing shift ×
// selection-bypass × multi-shard interaction: with base-1 identifiers the
// desolate addresser wastes slot 0 (shift=1), so the partition layer
// carves up a slot space that includes a dead slot. Every live vertex's
// slot must still round-trip through locate/globalOf back to its external
// identifier, and a sharded bypass run over such a graph must match the
// single-shard run.
func TestDesolateShardedRoundTrip(t *testing.T) {
	g := ringGraph(16, 1) // base-1: desolate shift = 1, slots = 17
	for _, shards := range []int{2, 3, 4} {
		for _, kind := range []Partition{PartitionRange, PartitionHash} {
			cfg := Config{
				Combiner:        CombinerSpin,
				Addressing:      AddressDesolate,
				Shards:          shards,
				Partition:       kind,
				SelectionBypass: true,
				CheckInvariants: true,
				Threads:         4,
			}
			e, _, err := Run(g, cfg, haltingFlood(6))
			if err != nil {
				t.Fatalf("shards=%d %v: %v", shards, kind, err)
			}
			if e.shift != 1 {
				t.Fatalf("shards=%d %v: shift = %d, want 1", shards, kind, e.shift)
			}
			// slot ↔ id round trip through the partition layer.
			for i := 0; i < g.N(); i++ {
				id := g.ExternalID(i)
				slot := e.addr.locate(id)
				s, local := e.part.locate(slot)
				if back := e.part.globalOf(s, local); back != slot {
					t.Fatalf("shards=%d %v: globalOf(locate(%d)) = %d, want %d", shards, kind, id, back, slot)
				}
				if got := e.addr.idOf(e.part.globalOf(s, local)); got != id {
					t.Fatalf("shards=%d %v: id round trip %d -> %d", shards, kind, id, got)
				}
			}
			// The dead slot (global 0) must never have been activated.
			s0, l0 := e.part.locate(0)
			if e.shards[s0].active[l0] != 0 {
				t.Fatalf("shards=%d %v: desolate dead slot ran", shards, kind)
			}
			// Values must match the single-shard reference run.
			ref, _, err := Run(g, Config{Combiner: CombinerSpin, Addressing: AddressDesolate, SelectionBypass: true, CheckInvariants: true, Threads: 4}, haltingFlood(6))
			if err != nil {
				t.Fatal(err)
			}
			want, got := ref.ValuesDense(), e.ValuesDense()
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("shards=%d %v: value mismatch at %d: %d vs %d", shards, kind, i, got[i], want[i])
				}
			}
		}
	}
}
