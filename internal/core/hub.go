package core

// Hub splitting (Config.HubSplit): on skewed graphs a single
// high-out-degree vertex serialises its worker (and under sharding its
// whole shard) for the length of one scatter loop. Instead of scattering
// inline, a push broadcast from a vertex whose out-degree exceeds the
// cut (default: the p99.9 of the out-degree distribution) is deferred
// into the worker's pending list and executed after the compute phase as
// chunked subtasks that any worker can claim — through the work-stealing
// deques when Config.WorkStealing is on, a shared claim cursor
// otherwise ("Strategies to Deal with an Extreme Form of Irregularity",
// arXiv 2010.01542). Deferral is invisible to the superstep's
// semantics: push deliveries always land in the NEXT buffer, so whether
// they happen during compute or just after changes nothing the current
// superstep can observe, and the messages were already counted at
// Broadcast time.

// hubTask is one chunk of a deferred hub broadcast: pending entry
// (worker, idx), out-neighbour positions [lo, hi).
type hubTask struct {
	worker, idx int32
	lo, hi      int32
}

// hubChunkEdges is the subtask grain. Small enough that a p99.9 hub
// yields several chunks on test-sized graphs, large enough that the
// per-chunk claim cost is noise against the scatter work.
const hubChunkEdges = 1024

// hubScatterPhase chunks every worker's pending hub broadcasts and
// executes the chunks in parallel. Runs between the compute barrier and
// the router/cache drains: the pushes issued here flow through each
// executing worker's own routing state and are flushed by the ordinary
// barrier machinery.
func (e *Engine[V, M]) hubScatterPhase() {
	tasks := e.hubTaskBuf[:0]
	for wi, w := range e.workers {
		for i, slot := range w.hubSlots {
			deg := int32(e.g.OutDegree(int(slot) - e.shift))
			for lo := int32(0); lo < deg; lo += hubChunkEdges {
				hi := lo + hubChunkEdges
				if hi > deg {
					hi = deg
				}
				tasks = append(tasks, hubTask{int32(wi), int32(i), lo, hi})
			}
		}
	}
	e.hubTaskBuf = tasks
	if len(tasks) == 0 {
		return
	}
	body := func(w int, t hubTask) {
		src := e.workers[t.worker]
		slot := int(src.hubSlots[t.idx])
		msg := src.hubMsgs[t.idx]
		ctx := e.workers[w]
		if ctx.route != nil {
			// Attribute cross-shard traffic to the hub's shard, not to
			// whatever vertex this worker computed last.
			d, _ := e.part.locate(slot)
			ctx.curShard = int32(d)
		}
		ctx.hubTasks++
		base := e.g.Base()
		nbs := e.g.OutNeighborsWith(&ctx.nbuf, slot-e.shift)
		for _, nb := range nbs[t.lo:t.hi] {
			dst := e.addr.locate(base + nb)
			ctx.push(dst, msg)
			if e.cfg.SelectionBypass {
				ctx.enroll(dst)
			}
		}
	}
	if e.cfg.WorkStealing && e.threads > 1 && len(tasks) > 1 {
		e.hubScatterStealing(tasks, body)
		return
	}
	e.forSpans(len(tasks), func(w, k int) { body(w, tasks[k]) })
}

// hubScatterStealing runs the chunk tasks under the PR 6 deque
// discipline: queues are seeded by the hub's shard (shard s -> worker
// s mod threads, same affinity as the compute spans), owners pop from
// the front, and a dry worker steals from the back of its neighbours'
// queues.
func (e *Engine[V, M]) hubScatterStealing(tasks []hubTask, body func(w int, t hubTask)) {
	t := e.threads
	if e.stealQs == nil {
		e.stealQs = make([]stealQueue, t)
	}
	for i := range e.stealQs {
		e.stealQs[i].reset()
	}
	for k, task := range tasks {
		src := e.workers[task.worker]
		d, _ := e.part.locate(int(src.hubSlots[task.idx]))
		e.stealQs[d%t].push(int32(k))
	}
	e.dispatch(t, func(w int) {
		e.guard(w, func() {
			ctx := e.workers[w]
			for {
				k, ok := e.stealQs[w].popFront()
				if !ok {
					for off := 1; off < t; off++ {
						if k, ok = e.stealQs[(w+off)%t].popBack(); ok {
							ctx.stolen++
							break
						}
					}
				}
				if !ok {
					return
				}
				body(w, tasks[k])
			}
		})
	})
}
