package core

import (
	"encoding/binary"
	"os"
	"strings"
	"testing"
)

// commitCheckpoint writes a minimal valid (v1) checkpoint through the
// sink's transactional writer: enough for VerifyCheckpoint/LatestGood to
// accept it without standing up an engine.
func commitCheckpoint(t *testing.T, sink *FileSink, superstep int) {
	t.Helper()
	w, err := sink.Sink(superstep)
	if err != nil {
		t.Fatalf("Sink(%d): %v", superstep, err)
	}
	var rec [20]byte
	copy(rec[:4], checkpointMagicV1[:])
	binary.LittleEndian.PutUint64(rec[4:12], uint64(superstep))
	if _, err := w.Write(rec[:]); err != nil {
		t.Fatal(err)
	}
	if err := w.(CheckpointCommitter).Commit(); err != nil {
		t.Fatalf("Commit(%d): %v", superstep, err)
	}
}

// TestFileSinkOwnersCannotDestroyEachOther is the multi-writer
// regression the resident service exposed: two sinks sharing one
// directory — as two concurrent jobs would — must not prune or shadow
// each other's latest-good checkpoints, even with an aggressive keep
// bound.
func TestFileSinkOwnersCannotDestroyEachOther(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileSinkOwned(dir, 1, "job-a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewFileSinkOwned(dir, 1, "job-b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Interleave commits; keep=1 prunes after every commit, the exact
	// pattern that used to delete the other writer's files.
	commitCheckpoint(t, a, 2)
	commitCheckpoint(t, b, 3)
	commitCheckpoint(t, a, 4)
	commitCheckpoint(t, b, 5)
	commitCheckpoint(t, a, 6)

	check := func(sink *FileSink, want int) {
		t.Helper()
		r, got, found, err := sink.LatestGood()
		if err != nil || !found {
			t.Fatalf("LatestGood(%s) = found=%v err=%v, want a checkpoint", sink.Owner(), found, err)
		}
		defer r.Close()
		if got != want {
			t.Fatalf("LatestGood(%s) = superstep %d, want %d", sink.Owner(), got, want)
		}
	}
	check(a, 6)
	check(b, 5)
	if steps := a.committed(); len(steps) != 1 {
		t.Fatalf("owner a retained %v, want exactly its keep=1 newest", steps)
	}
	if steps := b.committed(); len(steps) != 1 {
		t.Fatalf("owner b retained %v, want exactly its keep=1 newest", steps)
	}
}

// TestFileSinkLegacyAndOwnedNamespacesAreDisjoint pins the naming
// discipline both ways: an unowned sink never sees (or prunes) owned
// files, and an owned sink never sees unowned ones — including the
// numeric-owner case whose name an unstrict parser would misread.
func TestFileSinkLegacyAndOwnedNamespacesAreDisjoint(t *testing.T) {
	dir := t.TempDir()
	legacy, err := NewFileSink(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	owned, err := NewFileSinkOwned(dir, 1, "7")
	if err != nil {
		t.Fatal(err)
	}
	defer owned.Close()

	commitCheckpoint(t, owned, 9)
	commitCheckpoint(t, legacy, 4)
	commitCheckpoint(t, legacy, 8) // prunes legacy 4, must not touch ckpt-7-…

	if steps := legacy.committed(); len(steps) != 1 || steps[0] != 8 {
		t.Fatalf("legacy sink sees %v, want [8]", steps)
	}
	if steps := owned.committed(); len(steps) != 1 || steps[0] != 9 {
		t.Fatalf("owned sink sees %v, want [9]", steps)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want one file per namespace", names)
	}
}

// TestFileSinkCollisionIsConstructionTimeError: the same (dir, owner)
// pair cannot have two live sinks in one process; Close releases the
// claim without deleting recoverable state.
func TestFileSinkCollisionIsConstructionTimeError(t *testing.T) {
	dir := t.TempDir()
	first, err := NewFileSink(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileSink(dir, 0); err == nil || !strings.Contains(err.Error(), "already has") {
		t.Fatalf("second unowned sink on one dir: err = %v, want collision error", err)
	}
	commitCheckpoint(t, first, 3)
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	if err := first.Close(); err != nil {
		t.Fatalf("Close is not idempotent: %v", err)
	}

	reopened, err := NewFileSink(dir, 0)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	defer reopened.Close()
	r, got, found, err := reopened.LatestGood()
	if err != nil || !found || got != 3 {
		t.Fatalf("state lost across Close/reopen: %d/%v/%v", got, found, err)
	}
	r.Close()

	if _, err := NewFileSinkOwned(dir, 0, "x"); err != nil {
		t.Fatalf("different owner must coexist: %v", err)
	}
	if _, err := NewFileSinkOwned(dir, 0, "x"); err == nil {
		t.Fatal("duplicate owner accepted")
	}
}

// TestFileSinkOwnerValidation pins the owner grammar.
func TestFileSinkOwnerValidation(t *testing.T) {
	dir := t.TempDir()
	for _, owner := range []string{"", "a/b", "a b", "j\x00b"} {
		if _, err := NewFileSinkOwned(dir, 0, owner); err == nil {
			t.Fatalf("owner %q accepted", owner)
		}
	}
	ok, err := NewFileSinkOwned(dir, 0, "job-1.retry_2")
	if err != nil {
		t.Fatal(err)
	}
	ok.Close()
}
