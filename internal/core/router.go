package core

import "unsafe"

// shardRouter is one worker's sender-side routing state under sharding:
// a direct-mapped combining cache per destination shard (generalizing
// the single senderCache of Config.SenderCombining), per-destination
// enrol buffers, and the per-shard delivery counters behind
// StepStats.ShardMessages. Repeated sends to the same destination slot
// pre-combine worker-locally; a cache conflict evicts the old entry to
// the destination shard's mailbox, and drainShard flushes the rest at
// the barrier, so cross-shard traffic arrives as bulk combines instead
// of per-message CAS/lock acquisitions.
type shardRouter[M any] struct {
	combine CombineFunc[M]

	// dst/msg are the per-destination-shard caches, each routeEntries
	// wide; dst holds the cached LOCAL slot, -1 when the way is empty.
	dst [][]int32
	msg [][]M

	// frontier holds the LOCAL slots this worker enrolled per destination
	// shard (selection bypass), concatenated by gatherFrontierSharded.
	frontier [][]int32

	// sent counts deliveries routed per destination shard this superstep;
	// cross counts those whose destination differed from the sender's
	// shard; combined counts router-cache combines (folded into
	// StepStats.LocalCombines so message conservation stays exact).
	sent     []uint64
	cross    uint64
	combined uint64

	// Overlapped-delivery state (Config.OverlapDelivery; nil otherwise).
	// Cache evictions append to pend[d] instead of touching the mailbox;
	// a full batch is handed to shard d's drainer and applied while
	// compute is still running. earlyBatches counts those handoffs
	// (StepStats.EarlyDeliveredBatches).
	drainer      *shardDrainer[M]
	pend         []*shardBatch[M]
	earlyBatches uint64
}

// routeBits sizes each per-shard cache way set; same geometry as the
// sender-combining cache (sendercache.go).
const routeBits = 9

func newShardRouter[M any](combine CombineFunc[M], shards int, bypass bool) *shardRouter[M] {
	r := &shardRouter[M]{
		combine: combine,
		dst:     make([][]int32, shards),
		msg:     make([][]M, shards),
		sent:    make([]uint64, shards),
	}
	for d := range r.dst {
		ways := make([]int32, 1<<routeBits)
		for i := range ways {
			ways[i] = -1
		}
		r.dst[d] = ways
		r.msg[d] = make([]M, 1<<routeBits)
	}
	if bypass {
		r.frontier = make([][]int32, shards)
	}
	return r
}

// enableOverlap switches this router's eviction path to batched early
// delivery through d. Pending batches are allocated lazily on first
// eviction per destination.
func (r *shardRouter[M]) enableOverlap(d *shardDrainer[M]) {
	r.drainer = d
	r.pend = make([]*shardBatch[M], len(r.dst))
}

// routeIndex hashes a local slot into a cache way (Fibonacci hashing,
// as in senderCache.index).
func routeIndex(local int) int {
	return int((uint64(local) * 0x9E3779B97F4A7C15) >> (64 - routeBits))
}

// add routes one delivery for (shard, local) through the cache, evicting
// a conflicting entry straight into mb (the destination shard's mailbox,
// which is concurrent-safe for every push combiner).
func (r *shardRouter[M]) add(shard, local int, m M, mb mailbox[M]) {
	ways, msgs := r.dst[shard], r.msg[shard]
	i := routeIndex(local)
	switch {
	case ways[i] == int32(local):
		r.combine(&msgs[i], m)
		r.combined++
	case ways[i] < 0:
		ways[i] = int32(local)
		msgs[i] = m
	default:
		if r.drainer != nil {
			r.evictOverlap(shard, ways[i], msgs[i])
		} else {
			mb.deliver(int(ways[i]), msgs[i])
		}
		ways[i] = int32(local)
		msgs[i] = m
	}
}

// evictOverlap appends one evicted entry to the pending batch for shard,
// submitting the batch to the shard's drainer when it fills. Only the
// drainer goroutine touches the mailbox, so early delivery never
// contends with other workers' evictions.
func (r *shardRouter[M]) evictOverlap(shard int, local int32, m M) {
	b := r.pend[shard]
	if b == nil {
		b = r.drainer.getBatch()
		r.pend[shard] = b
	}
	b.add(local, m)
	if b.full() {
		r.drainer.submit(shard, b)
		r.earlyBatches++
		r.pend[shard] = nil
	}
}

// drainShard flushes this worker's cached entries for one destination
// shard into its mailbox and empties the ways. drainRouters arranges a
// single drainer per destination shard, so the flush itself never
// contends.
func (r *shardRouter[M]) drainShard(shard int, mb mailbox[M]) {
	// Residual drain of a partial overlap batch: the drainers are already
	// quiesced and drainRouters runs one drainer per destination shard,
	// so delivering here directly keeps the single-writer property.
	if r.pend != nil {
		if b := r.pend[shard]; b != nil {
			for i, local := range b.dst {
				mb.deliver(int(local), b.msg[i])
			}
			r.drainer.recycle(b)
			r.pend[shard] = nil
		}
	}
	ways, msgs := r.dst[shard], r.msg[shard]
	for i, local := range ways {
		if local >= 0 {
			mb.deliver(int(local), msgs[i])
			ways[i] = -1
		}
	}
}

// resetSuperstep clears the per-superstep counters and enrol buffers.
// The caches themselves are already empty: drainRouters runs every
// superstep, crash or no crash, before stats are gathered.
func (r *shardRouter[M]) resetSuperstep() {
	clear(r.sent)
	r.cross, r.combined, r.earlyBatches = 0, 0, 0
	for d := range r.frontier {
		r.frontier[d] = r.frontier[d][:0]
	}
}

func (r *shardRouter[M]) footprintBytes() uint64 {
	var m M
	b := uint64(0)
	for d := range r.dst {
		b += uint64(len(r.dst[d]))*4 + uint64(len(r.msg[d]))*uint64(unsafe.Sizeof(m))
	}
	for _, f := range r.frontier {
		b += uint64(cap(f)) * 4
	}
	b += uint64(len(r.sent)) * 8
	return b
}
