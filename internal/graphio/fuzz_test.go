package graphio

import (
	"bytes"
	"testing"

	"ipregel/internal/graph"
)

// The fuzz targets pin the parsers' error contract: arbitrary input must
// produce (nil, error) or a graph that passes Validate — never a panic.
// The parsers guard against hostile headers (a DIMACS problem line or
// METIS header declaring billions of vertices must not allocate first and
// ask questions later), and the fuzzers are how those guards earn trust.
// Run at depth with `go test -fuzz FuzzReadEdgeList ./internal/graphio/`;
// in normal `go test` runs only the seed corpus executes.

// fuzzOptions is the option matrix each input is parsed under; the
// invalid combination (KeepWeights+Dedup) is included deliberately — it
// must fail cleanly too. Every entry sets MaxVertices: without the cap a
// single header or identifier can legally demand gigabytes (the CSR
// builder sizes arrays from declared counts and maximum ids), which is
// exactly the attack MaxVertices exists to stop — and what would OOM the
// fuzzer.
var fuzzOptions = []Options{
	{MaxVertices: 1 << 16},
	{Undirected: true, BuildInEdges: true, MaxVertices: 1 << 16},
	{Dedup: true, MaxVertices: 1 << 16},
	{KeepWeights: true, MaxVertices: 1 << 16},
	{KeepWeights: true, Dedup: true, MaxVertices: 1 << 16},
}

func fuzzRead(t *testing.T, format Format, data []byte) {
	for _, opts := range fuzzOptions {
		g, err := Read(bytes.NewReader(data), format, opts)
		if err != nil {
			if g != nil {
				t.Fatalf("%v/%+v: non-nil graph alongside error %v", format, opts, err)
			}
			continue
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%v/%+v: parser accepted input but built a corrupt graph: %v", format, opts, err)
		}
	}
}

// TestMaxVerticesGuards pins the header/identifier bombs the fuzzers
// would otherwise find by exhausting memory: each hostile input must be
// rejected by the MaxVertices cap before any size is trusted.
func TestMaxVerticesGuards(t *testing.T) {
	capped := Options{MaxVertices: 1000}
	cases := []struct {
		name   string
		format Format
		data   string
	}{
		{"edge list huge id", FormatEdgeList, "4294967295 0\n"},
		{"KONECT huge id", FormatKONECT, "% asym\n1 4000000000\n"},
		{"DIMACS huge n", FormatDIMACS, "p sp 2000000000 1\na 1 2 1\n"},
		{"METIS huge n", FormatMETIS, "2000000000 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := Read(bytes.NewReader([]byte(tc.data)), tc.format, capped)
			if err == nil {
				t.Fatalf("parser accepted input implying %d+ vertices despite MaxVertices=1000 (n=%d)", 2000000000, g.N())
			}
		})
	}
}

// TestDIMACSRejectsHostileHeaders covers guards that hold even without a
// MaxVertices cap: negative counts and identifiers beyond 32 bits must
// fail instead of wrapping.
func TestDIMACSRejectsHostileHeaders(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("p sp -5 0\n")), FormatDIMACS, Options{}); err == nil {
		t.Fatal("negative vertex count accepted")
	}
	if _, err := Read(bytes.NewReader([]byte("p sp 3 1\na 4294967297 2 1\n")), FormatDIMACS, Options{}); err == nil {
		t.Fatal("64-bit arc identifier silently truncated instead of rejected")
	}
	if _, err := Read(bytes.NewReader([]byte("-3 1\n")), FormatMETIS, Options{}); err == nil {
		t.Fatal("negative METIS vertex count accepted")
	}
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add([]byte("# comment\n0 1\n1 2\n2 0\n"))
	f.Add([]byte("0 1 7\n1 0 3\n"))
	f.Add([]byte("% other comment style\n4294967295 0\n"))
	f.Add([]byte("0\n"))
	f.Add([]byte("a b\n"))
	f.Fuzz(func(t *testing.T, data []byte) { fuzzRead(t, FormatEdgeList, data) })
}

func FuzzReadKONECT(f *testing.F) {
	f.Add([]byte("% sym\n1 2\n2 3\n"))
	f.Add([]byte("% asym\n1 2 1 1234567890\n"))
	f.Add([]byte("% bip\n1 2\n"))
	f.Add([]byte("1 2\n"))
	f.Fuzz(func(t *testing.T, data []byte) { fuzzRead(t, FormatKONECT, data) })
}

func FuzzReadDIMACS(f *testing.F) {
	f.Add([]byte("c comment\np sp 3 2\na 1 2 10\na 2 3 20\n"))
	f.Add([]byte("p sp 0 0\n"))
	f.Add([]byte("p sp 99999999999999999999 1\na 1 1 1\n"))
	f.Add([]byte("a 1 2 3\n"))
	f.Fuzz(func(t *testing.T, data []byte) { fuzzRead(t, FormatDIMACS, data) })
}

func FuzzReadMETIS(f *testing.F) {
	f.Add([]byte("3 2\n2 3\n1\n1\n"))
	f.Add([]byte("2 1 001\n2 1\n1 1\n"))
	f.Add([]byte("0 0\n"))
	f.Add([]byte("1 0\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) { fuzzRead(t, FormatMETIS, data) })
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	var b graph.Builder
	b.BuildInEdges()
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	if err := WriteBinary(&buf, b.MustBuild()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())/2]) // truncated
	f.Add([]byte{})
	f.Add([]byte("IPGR"))

	// IPG3 (block-compressed) seeds: valid unweighted, valid weighted,
	// truncated mid-stream, and one with a corrupted varint byte — the
	// reader must reject all damage with an error, never a panic.
	var b3 graph.Builder
	b3.Compress()
	for i := 0; i < 100; i++ {
		b3.AddEdge(graph.VertexID(i%10), graph.VertexID((i*7)%10))
	}
	var buf3 bytes.Buffer
	if err := WriteBinary(&buf3, b3.MustBuild()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf3.Bytes())
	f.Add(buf3.Bytes()[:len(buf3.Bytes())-3])
	corrupt := append([]byte(nil), buf3.Bytes()...)
	corrupt[len(corrupt)-1] ^= 0x80
	f.Add(corrupt)
	var wb graph.WeightedBuilder
	wb.AddEdge(1, 2, 10)
	wb.AddEdge(2, 3, 20)
	wg, err := wb.MustBuild().Compress()
	if err != nil {
		f.Fatal(err)
	}
	var bufW bytes.Buffer
	if err := WriteBinary(&bufW, wg); err != nil {
		f.Fatal(err)
	}
	f.Add(bufW.Bytes())
	// Hostile IPG3 headers: huge n (must die on MaxVertices before
	// allocating), dataLen lying about the stream size.
	f.Add([]byte("IPG3\x00\x00\x00\x00\x00\x00\x00\x00\x40\x00\x00\x00" +
		"\xff\xff\xff\xff\xff\xff\xff\x0f" + "\x10\x00\x00\x00\x00\x00\x00\x00" + "\x10\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("IPG3\x00\x00\x00\x00\x00\x00\x00\x00\x40\x00\x00\x00" +
		"\x02\x00\x00\x00\x00\x00\x00\x00" + "\x02\x00\x00\x00\x00\x00\x00\x00" + "\xff\xff\xff\xff\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) { fuzzRead(t, FormatBinary, data) })
}
