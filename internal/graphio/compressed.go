package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ipregel/internal/graph"
)

// IPG3 is the on-disk form of the block-compressed adjacency backend
// (internal/graph/compressed.go). Unlike IPG1/IPG2 it stores the block
// arrays verbatim, so a load is a validation pass instead of a rebuild,
// and the mmap loader (mapped.go) can alias the file directly. Layout
// (all little-endian; sections padded so every array is naturally
// aligned when the file is mapped at a page boundary):
//
//	magic     [4]byte  "IPG3"
//	flags     uint32   bit 0: weighted (trailing weight section present)
//	base      uint32   smallest external identifier
//	blockSize uint32   vertices per block (graph.CompressedBlockSize)
//	n         uint64   vertex count
//	m         uint64   edge count
//	dataLen   uint64   varint stream length in bytes
//	deg       [n]uint32            out-degree per vertex
//	pad       to 8-byte alignment
//	blockOff  [nBlocks+1]uint64    byte offset of each block's stream
//	blockEdge [nBlocks+1]uint64    edge-count prefix at each block
//	data      [dataLen]byte        zigzag-varint delta stream
//	pad       to 4-byte alignment  (only when weighted)
//	weights   [m]uint32            per-edge weights in adjacency order
var binaryMagic3 = [4]byte{'I', 'P', 'G', '3'}

const ipg3Weighted = 1 << 0

// ipg3Layout holds the computed section offsets of an IPG3 file.
type ipg3Layout struct {
	nBlocks                           uint64
	degOff, blockOffOff, blockEdgeOff uint64
	dataOff, weightOff, total         uint64
}

func computeIPG3Layout(n, m, dataLen uint64, weighted bool) ipg3Layout {
	var l ipg3Layout
	l.nBlocks = (n + graph.CompressedBlockSize - 1) / graph.CompressedBlockSize
	l.degOff = 40
	end := l.degOff + n*4
	end += (8 - end%8) % 8
	l.blockOffOff = end
	end += (l.nBlocks + 1) * 8
	l.blockEdgeOff = end
	end += (l.nBlocks + 1) * 8
	l.dataOff = end
	end += dataLen
	l.total = end
	if weighted {
		end += (4 - end%4) % 4
		l.weightOff = end
		l.total = end + m*4
	}
	return l
}

// writeBinaryCompressed encodes a compressed-backend graph as IPG3.
// WriteBinary dispatches here, so the flat IPG1/IPG2 byte layouts are
// untouched.
func writeBinaryCompressed(w io.Writer, g *graph.Graph) error {
	p, ok := g.OutCompressedParts()
	if !ok {
		return fmt.Errorf("graphio: graph is not compressed")
	}
	weights := g.WeightData()
	l := computeIPG3Layout(uint64(g.N()), g.M(), uint64(len(p.Data)), weights != nil)
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [40]byte
	copy(hdr[0:], binaryMagic3[:])
	var flags uint32
	if weights != nil {
		flags |= ipg3Weighted
	}
	binary.LittleEndian.PutUint32(hdr[4:], flags)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(g.Base()))
	binary.LittleEndian.PutUint32(hdr[12:], graph.CompressedBlockSize)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[24:], g.M())
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(p.Data)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	pos := uint64(40)
	pad := func(to uint64) error {
		for ; pos < to; pos++ {
			if err := bw.WriteByte(0); err != nil {
				return err
			}
		}
		return nil
	}
	for _, d := range p.Deg {
		binary.LittleEndian.PutUint32(buf[:4], d)
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
		pos += 4
	}
	if err := pad(l.blockOffOff); err != nil {
		return err
	}
	for _, v := range p.BlockOff {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		pos += 8
	}
	for _, v := range p.BlockEdge {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		pos += 8
	}
	if _, err := bw.Write(p.Data); err != nil {
		return err
	}
	pos += uint64(len(p.Data))
	if weights != nil {
		if err := pad(l.weightOff); err != nil {
			return err
		}
		for _, wt := range weights {
			binary.LittleEndian.PutUint32(buf[:4], wt)
			if _, err := bw.Write(buf[:4]); err != nil {
				return err
			}
			pos += 4
		}
	}
	return bw.Flush()
}

// readBinaryCompressed decodes an IPG3 stream (magic already consumed).
// Every header count is bounds-checked before it sizes an allocation,
// and graph.NewCompressedOut re-validates the block arrays with a full
// decode sweep, so hostile inputs error — they never panic and never
// buy unbounded allocations under Options.MaxVertices.
func readBinaryCompressed(br io.Reader, opts Options) (*graph.Graph, error) {
	var hdr [36]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graphio: IPG3 header: %w", err)
	}
	flags := binary.LittleEndian.Uint32(hdr[0:])
	base := graph.VertexID(binary.LittleEndian.Uint32(hdr[4:]))
	blockSize := binary.LittleEndian.Uint32(hdr[8:])
	n := binary.LittleEndian.Uint64(hdr[12:])
	m := binary.LittleEndian.Uint64(hdr[20:])
	dataLen := binary.LittleEndian.Uint64(hdr[28:])
	if flags&^uint32(ipg3Weighted) != 0 {
		return nil, fmt.Errorf("graphio: IPG3 unknown flags %#x", flags)
	}
	if blockSize != graph.CompressedBlockSize {
		return nil, fmt.Errorf("graphio: IPG3 block size %d, this build uses %d", blockSize, graph.CompressedBlockSize)
	}
	const maxN = 1 << 33
	// One varint per edge, 1–10 bytes each: anything outside that band
	// is a lying header.
	if n > maxN || m > maxN*16 || dataLen > 10*m || (m > 0 && dataLen < m) {
		return nil, fmt.Errorf("graphio: implausible IPG3 header n=%d m=%d dataLen=%d", n, m, dataLen)
	}
	if err := opts.checkCount(n); err != nil {
		return nil, err
	}
	if opts.Undirected || opts.Dedup {
		return nil, fmt.Errorf("graphio: Undirected/Dedup cannot be applied to an IPG3 file (already block-compressed)")
	}
	weighted := flags&ipg3Weighted != 0

	l := computeIPG3Layout(n, m, dataLen, weighted)
	nb := int(l.nBlocks)
	pos := uint64(40)
	skipTo := func(to uint64) error {
		if to < pos {
			return fmt.Errorf("graphio: IPG3 layout error")
		}
		_, err := io.CopyN(io.Discard, br, int64(to-pos))
		pos = to
		return err
	}
	readU32s := func(count uint64) ([]uint32, error) {
		raw := make([]byte, count*4)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, err
		}
		pos += count * 4
		out := make([]uint32, count)
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(raw[i*4:])
		}
		return out, nil
	}
	readU64s := func(count int) ([]uint64, error) {
		raw := make([]byte, count*8)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, err
		}
		pos += uint64(count) * 8
		out := make([]uint64, count)
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(raw[i*8:])
		}
		return out, nil
	}

	deg, err := readU32s(n)
	if err != nil {
		return nil, fmt.Errorf("graphio: IPG3 degrees: %w", err)
	}
	if err := skipTo(l.blockOffOff); err != nil {
		return nil, fmt.Errorf("graphio: IPG3 padding: %w", err)
	}
	blockOff, err := readU64s(nb + 1)
	if err != nil {
		return nil, fmt.Errorf("graphio: IPG3 block offsets: %w", err)
	}
	blockEdge, err := readU64s(nb + 1)
	if err != nil {
		return nil, fmt.Errorf("graphio: IPG3 block edges: %w", err)
	}
	if blockEdge[nb] != m {
		return nil, fmt.Errorf("graphio: IPG3 edge prefix %d != header m=%d", blockEdge[nb], m)
	}
	data := make([]byte, dataLen)
	if _, err := io.ReadFull(br, data); err != nil {
		return nil, fmt.Errorf("graphio: IPG3 data: %w", err)
	}
	pos += dataLen
	var weights []uint32
	if weighted {
		if err := skipTo(l.weightOff); err != nil {
			return nil, fmt.Errorf("graphio: IPG3 padding: %w", err)
		}
		if weights, err = readU32s(m); err != nil {
			return nil, fmt.Errorf("graphio: IPG3 weights: %w", err)
		}
	}
	g, err := graph.NewCompressedOut(base, int(n), graph.CompressedParts{
		Deg: deg, BlockOff: blockOff, BlockEdge: blockEdge, Data: data,
	}, weights)
	if err != nil {
		return nil, fmt.Errorf("graphio: IPG3: %w", err)
	}
	if opts.BuildInEdges {
		g = g.WithInEdges()
	}
	return g, nil
}
