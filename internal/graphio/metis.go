package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ipregel/internal/graph"
)

// METIS graph format support. METIS files describe undirected graphs:
// a header "n m" followed by n lines, line i listing the (1-indexed)
// neighbours of vertex i; every edge appears in both endpoint lines and m
// counts each undirected edge once. The format is ubiquitous in the
// partitioning literature, and graph frameworks are routinely fed METIS
// inputs, so the release supports it alongside the paper's KONECT/DIMACS
// formats.

// ReadMETIS parses a METIS file into a directed graph containing both
// orientations of every edge (i.e. a symmetric graph).
func ReadMETIS(r io.Reader, opts Options) (*graph.Graph, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.KeepWeights {
		return nil, fmt.Errorf("graphio: METIS weight flags are not supported")
	}
	sc := newScanner(r)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" && line > 1 {
				// blank data lines are vertices with no neighbours
				return "", true
			}
			if strings.HasPrefix(text, "%") {
				continue
			}
			return text, true
		}
		return "", false
	}

	header, ok := next()
	if !ok {
		return nil, fmt.Errorf("graphio: METIS input empty")
	}
	var n int
	var m uint64
	if _, err := fmt.Sscanf(header, "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graphio: METIS header %q: %w", header, err)
	}
	if n < 0 {
		return nil, fmt.Errorf("graphio: METIS header declares negative vertex count %d", n)
	}
	if err := opts.checkCount(uint64(n)); err != nil {
		return nil, err
	}
	var b graph.Builder
	applyOpts(&b, opts)
	b.ForceN = n
	b.SetBase(1)
	b.Grow(opts.growHint(2 * m))
	var total uint64
	for u := 1; u <= n; u++ {
		text, ok := next()
		if !ok {
			return nil, fmt.Errorf("graphio: METIS input ends at vertex %d of %d", u, n)
		}
		i := 0
		for i < len(text) {
			v, ni, err := parseUint(text, i)
			if err != nil {
				break
			}
			i = ni
			if v < 1 || int(v) > n {
				return nil, fmt.Errorf("graphio: METIS vertex %d lists out-of-range neighbour %d", u, v)
			}
			b.AddEdge(graph.VertexID(u), v)
			total++
		}
	}
	if total != 2*m {
		return nil, fmt.Errorf("graphio: METIS header declares %d edges (%d endpoints), found %d endpoints", m, 2*m, total)
	}
	return b.Build()
}

// WriteMETIS encodes a symmetric graph in METIS format. The graph's edge
// count must be even and every edge must have its reverse present
// (METIS describes undirected graphs); Symmetrize first if needed.
func WriteMETIS(w io.Writer, g *graph.Graph) error {
	if g.M()%2 != 0 {
		return fmt.Errorf("graphio: METIS requires a symmetric graph (odd edge count %d)", g.M())
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()/2)
	var nb graph.NeighborBuf
	for u := 0; u < g.N(); u++ {
		for j, v := range g.OutNeighborsWith(&nb, u) {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d", uint64(v)+1); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
