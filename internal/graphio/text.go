package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ipregel/internal/graph"
)

// readEdgeList parses whitespace-separated "src dst [weight]" lines.
// Lines starting with '#' or '%' and blank lines are ignored; without
// Options.KeepWeights, extra columns (weights, timestamps) are ignored.
func readEdgeList(r io.Reader, opts Options) (*graph.Graph, error) {
	if opts.KeepWeights {
		var wb graph.WeightedBuilder
		if opts.BuildInEdges {
			wb.BuildInEdges()
		}
		sc := newScanner(r)
		line := 0
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" || text[0] == '#' || text[0] == '%' {
				continue
			}
			src, dst, w, err := parseWeightedEdge(text)
			if err != nil {
				return nil, fmt.Errorf("graphio: edge list line %d: %w", line, err)
			}
			if err := firstErr(opts.checkID(src), opts.checkID(dst)); err != nil {
				return nil, fmt.Errorf("graphio: edge list line %d: %w", line, err)
			}
			wb.AddEdge(src, dst, w)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return wb.Build()
	}
	var b graph.Builder
	applyOpts(&b, opts)
	sc := newScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		src, dst, err := parseEdge(text)
		if err != nil {
			return nil, fmt.Errorf("graphio: edge list line %d: %w", line, err)
		}
		if err := firstErr(opts.checkID(src), opts.checkID(dst)); err != nil {
			return nil, fmt.Errorf("graphio: edge list line %d: %w", line, err)
		}
		b.AddEdge(src, dst)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// readKONECT parses the KONECT TSV format. The first '%' header line may
// declare "sym" (undirected) or "asym"/"bip" (directed); subsequent '%'
// lines are comments. Data lines are "src dst [weight [time]]".
func readKONECT(r io.Reader, opts Options) (*graph.Graph, error) {
	var b graph.Builder
	applyOpts(&b, opts)
	sc := newScanner(r)
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '%' {
			if !sawHeader {
				sawHeader = true
				if !opts.Undirected && strings.Contains(text, "sym") && !strings.Contains(text, "asym") {
					b.Undirected()
				}
			}
			continue
		}
		src, dst, err := parseEdge(text)
		if err != nil {
			return nil, fmt.Errorf("graphio: KONECT line %d: %w", line, err)
		}
		if err := firstErr(opts.checkID(src), opts.checkID(dst)); err != nil {
			return nil, fmt.Errorf("graphio: KONECT line %d: %w", line, err)
		}
		b.AddEdge(src, dst)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

// readDIMACS parses the DIMACS challenge-9 .gr format used by the USA road
// network: "c" comment lines, one "p sp <n> <m>" problem line, and
// "a <src> <dst> <weight>" arc lines. Edge weights are ignored (the paper's
// SSSP assumes unit weights, §4 footnote 1). Vertex identifiers are
// 1-based, exactly the case that motivates the paper's offset and
// desolate-memory mappings (§5).
func readDIMACS(r io.Reader, opts Options) (*graph.Graph, error) {
	var b graph.Builder
	var wb graph.WeightedBuilder
	if opts.KeepWeights {
		if opts.BuildInEdges {
			wb.BuildInEdges()
		}
	} else {
		applyOpts(&b, opts)
	}
	sc := newScanner(r)
	line := 0
	declaredN := 0
	declaredM := uint64(0)
	seenP := false
	arcs := uint64(0)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		switch text[0] {
		case 'c':
			continue
		case 'p':
			if seenP {
				return nil, fmt.Errorf("graphio: DIMACS line %d: duplicate problem line", line)
			}
			seenP = true
			var kind string
			if _, err := fmt.Sscanf(text, "p %s %d %d", &kind, &declaredN, &declaredM); err != nil {
				return nil, fmt.Errorf("graphio: DIMACS line %d: bad problem line: %w", line, err)
			}
			if declaredN < 0 {
				return nil, fmt.Errorf("graphio: DIMACS line %d: negative vertex count %d", line, declaredN)
			}
			if err := opts.checkCount(uint64(declaredN)); err != nil {
				return nil, fmt.Errorf("graphio: DIMACS line %d: %w", line, err)
			}
			if opts.KeepWeights {
				wb.ForceN(declaredN)
				wb.SetBase(1)
				wb.Grow(opts.growHint(declaredM))
			} else {
				b.ForceN = declaredN
				b.SetBase(1)
				b.Grow(opts.growHint(declaredM))
			}
		case 'a':
			if !seenP {
				return nil, fmt.Errorf("graphio: DIMACS line %d: arc before problem line", line)
			}
			var s, d, w uint64
			if _, err := fmt.Sscanf(text, "a %d %d %d", &s, &d, &w); err != nil {
				return nil, fmt.Errorf("graphio: DIMACS line %d: bad arc: %w", line, err)
			}
			if s > uint64(^graph.VertexID(0)) || d > uint64(^graph.VertexID(0)) {
				return nil, fmt.Errorf("graphio: DIMACS line %d: identifier overflows 32-bit vertex ids", line)
			}
			if err := firstErr(opts.checkID(graph.VertexID(s)), opts.checkID(graph.VertexID(d))); err != nil {
				return nil, fmt.Errorf("graphio: DIMACS line %d: %w", line, err)
			}
			if opts.KeepWeights {
				wb.AddEdge(graph.VertexID(s), graph.VertexID(d), uint32(w))
			} else {
				b.AddEdge(graph.VertexID(s), graph.VertexID(d))
			}
			arcs++
		default:
			return nil, fmt.Errorf("graphio: DIMACS line %d: unknown record %q", line, text[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !seenP {
		return nil, fmt.Errorf("graphio: DIMACS input has no problem line")
	}
	if arcs != declaredM {
		return nil, fmt.Errorf("graphio: DIMACS declared %d arcs, found %d", declaredM, arcs)
	}
	if opts.KeepWeights {
		return wb.Build()
	}
	return b.Build()
}

func writeDIMACS(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "c generated by ipregel graphio")
	// DIMACS is 1-based: shift so the smallest written identifier is 1.
	fmt.Fprintf(bw, "p sp %d %d\n", g.N(), g.M())
	var werr error
	if g.HasWeights() {
		var nb graph.NeighborBuf
		for u := 0; u < g.N() && werr == nil; u++ {
			adj, ws := g.OutEdgesWeightedWith(&nb, u)
			for j, d := range adj {
				if _, werr = fmt.Fprintf(bw, "a %d %d %d\n", u+1, uint64(d)+1, ws[j]); werr != nil {
					break
				}
			}
		}
	} else {
		g.Edges(func(s, d graph.VertexID) bool {
			_, werr = fmt.Fprintf(bw, "a %d %d 1\n", uint64(s)+1, uint64(d)+1)
			return werr == nil
		})
	}
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	return sc
}

// parseEdge extracts the first two integer fields of a data line without
// allocating a field slice (these loops dominate load time on
// multi-hundred-million-edge files).
func parseEdge(s string) (src, dst graph.VertexID, err error) {
	i := 0
	src, i, err = parseUint(s, i)
	if err != nil {
		return 0, 0, err
	}
	dst, _, err = parseUint(s, i)
	if err != nil {
		return 0, 0, err
	}
	return src, dst, nil
}

// parseWeightedEdge parses "src dst [weight]", defaulting the weight to 1.
func parseWeightedEdge(s string) (src, dst graph.VertexID, w uint32, err error) {
	i := 0
	src, i, err = parseUint(s, i)
	if err != nil {
		return 0, 0, 0, err
	}
	dst, i, err = parseUint(s, i)
	if err != nil {
		return 0, 0, 0, err
	}
	wv, _, werr := parseUint(s, i)
	if werr != nil {
		return src, dst, 1, nil // no weight column
	}
	return src, dst, uint32(wv), nil
}

func parseUint(s string, i int) (graph.VertexID, int, error) {
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	if i >= len(s) || s[i] < '0' || s[i] > '9' {
		return 0, i, fmt.Errorf("expected integer in %q", s)
	}
	var v uint64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + uint64(s[i]-'0')
		if v > uint64(^graph.VertexID(0)) {
			return 0, i, fmt.Errorf("identifier overflows 32 bits in %q", s)
		}
		i++
	}
	return graph.VertexID(v), i, nil
}
