package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ipregel/internal/graph"
)

// Binary format layout (all little-endian):
//
//	magic   [4]byte  "IPG1"
//	base    uint32   smallest external identifier
//	n       uint64   vertex count
//	m       uint64   edge count
//	degrees [n]uint32   out-degree per vertex
//	adj     [m]uint32   concatenated adjacency (internal indices)
//
// Degrees rather than offsets are stored so the file stays 4 bytes per
// vertex; offsets are rebuilt on load. This mirrors the paper's
// "graph binary size" accounting (§7.4.2: identifiers of a vertex and its
// out-neighbours, 4 bytes each).

var (
	binaryMagic = [4]byte{'I', 'P', 'G', '1'}
	// binaryMagicW marks the weighted variant: the same layout followed
	// by [m]uint32 edge weights in adjacency order.
	binaryMagicW = [4]byte{'I', 'P', 'G', '2'}
)

// BinarySizeBytes returns the exact on-disk size of the binary encoding of
// a graph with n vertices and m edges — the quantity the paper calls the
// graph's "binary size" when separating graph storage from framework
// overhead (§7.4.2).
func BinarySizeBytes(n int, m uint64) uint64 {
	return 4 + 4 + 8 + 8 + uint64(n)*4 + m*4
}

// WriteBinary encodes g in the compact binary format; weighted graphs
// use the IPG2 variant and keep their weights, and compressed-backend
// graphs use the IPG3 variant (compressed.go) — the flat IPG1/IPG2
// byte layouts never change.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	if g.IsCompressed() {
		return writeBinaryCompressed(w, g)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	magic := binaryMagic
	if g.HasWeights() {
		magic = binaryMagicW
	}
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.Base()))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[12:], g.M())
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [4]byte
	for i := 0; i < g.N(); i++ {
		binary.LittleEndian.PutUint32(buf[:], uint32(g.OutDegree(i)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	var werr error
	if g.HasWeights() {
		for u := 0; u < g.N() && werr == nil; u++ {
			adj, _ := g.OutEdgesWeighted(u)
			for _, d := range adj {
				binary.LittleEndian.PutUint32(buf[:], uint32(d))
				if _, werr = bw.Write(buf[:]); werr != nil {
					break
				}
			}
		}
		for u := 0; u < g.N() && werr == nil; u++ {
			_, ws := g.OutEdgesWeighted(u)
			for _, wt := range ws {
				binary.LittleEndian.PutUint32(buf[:], wt)
				if _, werr = bw.Write(buf[:]); werr != nil {
					break
				}
			}
		}
	} else {
		g.Edges(func(_, d graph.VertexID) bool {
			binary.LittleEndian.PutUint32(buf[:], uint32(d))
			_, werr = bw.Write(buf[:])
			return werr == nil
		})
	}
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadBinary decodes a graph written by WriteBinary.
func ReadBinary(r io.Reader, opts Options) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graphio: binary header: %w", err)
	}
	if magic == binaryMagic3 {
		return readBinaryCompressed(br, opts)
	}
	weighted := magic == binaryMagicW
	if magic != binaryMagic && !weighted {
		return nil, fmt.Errorf("graphio: bad magic %q", magic)
	}
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graphio: binary header: %w", err)
	}
	base := graph.VertexID(binary.LittleEndian.Uint32(hdr[0:]))
	n := binary.LittleEndian.Uint64(hdr[4:])
	m := binary.LittleEndian.Uint64(hdr[12:])
	const maxN = 1 << 33
	if n > maxN || m > maxN*16 {
		return nil, fmt.Errorf("graphio: implausible binary header n=%d m=%d", n, m)
	}
	if err := opts.checkCount(n); err != nil {
		return nil, err
	}

	degreeBytes := make([]byte, n*4)
	if _, err := io.ReadFull(br, degreeBytes); err != nil {
		return nil, fmt.Errorf("graphio: binary degrees: %w", err)
	}
	var b graph.Builder
	applyOpts(&b, opts)
	b.ForceN = int(n)
	b.SetBase(base)
	b.Grow(opts.growHint(m))
	var srcs, dsts []graph.VertexID
	if weighted {
		srcs = make([]graph.VertexID, 0, opts.growHint(m))
		dsts = make([]graph.VertexID, 0, opts.growHint(m))
	}

	adjBuf := make([]byte, 4*4096)
	var total uint64
	src := graph.VertexID(0)
	var remaining uint32
	if n > 0 {
		remaining = binary.LittleEndian.Uint32(degreeBytes[0:4])
	}
	advance := func() {
		for remaining == 0 && uint64(src)+1 < n {
			src++
			remaining = binary.LittleEndian.Uint32(degreeBytes[src*4 : src*4+4])
		}
	}
	advance()
	for total < m {
		want := m - total
		if want > 4096 {
			want = 4096
		}
		chunk := adjBuf[:want*4]
		if _, err := io.ReadFull(br, chunk); err != nil {
			return nil, fmt.Errorf("graphio: binary adjacency: %w", err)
		}
		for i := uint64(0); i < want; i++ {
			d := graph.VertexID(binary.LittleEndian.Uint32(chunk[i*4 : i*4+4]))
			if remaining == 0 {
				return nil, fmt.Errorf("graphio: binary degree sum shorter than edge count")
			}
			if weighted {
				srcs = append(srcs, base+src)
				dsts = append(dsts, base+d)
			} else {
				b.AddEdge(base+src, base+d)
			}
			remaining--
			advance()
		}
		total += want
	}
	if remaining != 0 {
		return nil, fmt.Errorf("graphio: binary degree sum exceeds edge count")
	}
	if !weighted {
		return b.Build()
	}
	weightBytes := make([]byte, m*4)
	if _, err := io.ReadFull(br, weightBytes); err != nil {
		return nil, fmt.Errorf("graphio: binary weights: %w", err)
	}
	var wb graph.WeightedBuilder
	wb.ForceN(int(n))
	wb.SetBase(base)
	if opts.BuildInEdges {
		wb.BuildInEdges()
	}
	wb.Grow(int(m))
	for i := range srcs {
		wb.AddEdge(srcs[i], dsts[i], binary.LittleEndian.Uint32(weightBytes[i*4:i*4+4]))
	}
	return wb.Build()
}
