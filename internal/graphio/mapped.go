package graphio

import (
	"encoding/binary"
	"fmt"
	"os"
	"unsafe"

	"ipregel/internal/graph"
)

// Mapped is a graph whose adjacency aliases an mmap'd IPG1/IPG2/IPG3
// file: the kernel pages neighbour lists in on demand and can evict
// them under pressure, so graphs larger than RAM stay loadable — the
// Pregelix trade-off (PAPERS.md) of keeping only the frontier and
// mailboxes resident while the adjacency lives behind a paging
// boundary. The file is validated eagerly on open (one sequential pass,
// after which the pages are evictable), so the graph the engine sees is
// exactly as trustworthy as a heap-loaded one.
//
// Close unmaps the file; the Graph must not be used afterwards (its
// adjacency slices point into the dead mapping). Callers own the
// lifecycle: defer Close in CLIs, close at shutdown in the daemon.
type Mapped struct {
	g       *graph.Graph
	mapping []byte
	path    string
}

// Graph returns the mapped graph. Valid until Close.
func (m *Mapped) Graph() *graph.Graph { return m.g }

// Path returns the file the graph is mapped from.
func (m *Mapped) Path() string { return m.path }

// MappedBytes returns the size of the file mapping backing the graph.
func (m *Mapped) MappedBytes() uint64 { return uint64(len(m.mapping)) }

// Close unmaps the file. The Graph is invalid afterwards. Close is
// idempotent.
func (m *Mapped) Close() error {
	if m.mapping == nil {
		return nil
	}
	data := m.mapping
	m.mapping = nil
	m.g = nil
	return munmapFile(data)
}

// OpenMapped maps an IPG1/IPG2/IPG3 file and wraps it as a Graph whose
// adjacency aliases the mapping. IPG3 aliases every section (the file
// was written with natural alignment for exactly this); IPG1/IPG2 alias
// the adjacency and weights but rebuild the 8-byte offset array in
// memory, since the file stores 4-byte degrees. Options.BuildInEdges
// materialises a heap-resident in-adjacency (the out direction stays
// mapped); Options.MaxVertices bounds header-declared counts as in
// Read. Only little-endian hosts can alias the (little-endian) file.
func OpenMapped(path string, opts Options) (*Mapped, error) {
	if hostIsBigEndian() {
		return nil, fmt.Errorf("graphio: OpenMapped requires a little-endian host")
	}
	if opts.Undirected || opts.Dedup || opts.KeepWeights {
		return nil, fmt.Errorf("graphio: OpenMapped supports only BuildInEdges and MaxVertices options")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < 24 {
		return nil, fmt.Errorf("graphio: %s: too short for a binary graph header", path)
	}
	data, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("graphio: mmap %s: %w", path, err)
	}
	m := &Mapped{mapping: data, path: path}
	g, err := mappedGraph(data, opts)
	if err != nil {
		_ = munmapFile(data)
		return nil, fmt.Errorf("graphio: %s: %w", path, err)
	}
	if opts.BuildInEdges {
		g = g.WithInEdges()
	}
	m.g = g
	return m, nil
}

func hostIsBigEndian() bool {
	var one uint32 = 1
	return *(*byte)(unsafe.Pointer(&one)) != 1
}

// u32view and u64view alias a byte section as a typed slice. The caller
// guarantees 4-/8-byte alignment (the IPG formats pad sections for it;
// the mapping itself is page-aligned).
func u32view(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func u64view(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func idView(b []byte) []graph.VertexID {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*graph.VertexID)(unsafe.Pointer(&b[0])), len(b)/4)
}

// section bounds-checks [off, off+length) against the mapping.
func section(data []byte, off, length uint64) ([]byte, error) {
	if off > uint64(len(data)) || length > uint64(len(data))-off {
		return nil, fmt.Errorf("section [%d,+%d) beyond file size %d", off, length, len(data))
	}
	return data[off : off+length], nil
}

func mappedGraph(data []byte, opts Options) (*graph.Graph, error) {
	var magic [4]byte
	copy(magic[:], data)
	switch magic {
	case binaryMagic3:
		return mappedIPG3(data, opts)
	case binaryMagic, binaryMagicW:
		return mappedIPG1(data, magic == binaryMagicW, opts)
	}
	return nil, fmt.Errorf("bad magic %q (mmap supports IPG1/IPG2/IPG3)", magic)
}

// mappedIPG3 aliases all four block arrays straight out of the file and
// runs the same full validation as the streaming reader.
func mappedIPG3(data []byte, opts Options) (*graph.Graph, error) {
	if len(data) < 40 {
		return nil, fmt.Errorf("IPG3 header truncated")
	}
	flags := binary.LittleEndian.Uint32(data[4:])
	base := graph.VertexID(binary.LittleEndian.Uint32(data[8:]))
	blockSize := binary.LittleEndian.Uint32(data[12:])
	n := binary.LittleEndian.Uint64(data[16:])
	m := binary.LittleEndian.Uint64(data[24:])
	dataLen := binary.LittleEndian.Uint64(data[32:])
	if flags&^uint32(ipg3Weighted) != 0 {
		return nil, fmt.Errorf("IPG3 unknown flags %#x", flags)
	}
	if blockSize != graph.CompressedBlockSize {
		return nil, fmt.Errorf("IPG3 block size %d, this build uses %d", blockSize, graph.CompressedBlockSize)
	}
	const maxN = 1 << 33
	if n > maxN || m > maxN*16 || dataLen > 10*m || (m > 0 && dataLen < m) {
		return nil, fmt.Errorf("implausible IPG3 header n=%d m=%d dataLen=%d", n, m, dataLen)
	}
	if err := opts.checkCount(n); err != nil {
		return nil, err
	}
	weighted := flags&ipg3Weighted != 0
	l := computeIPG3Layout(n, m, dataLen, weighted)
	if l.total != uint64(len(data)) {
		return nil, fmt.Errorf("IPG3 size %d, header implies %d", len(data), l.total)
	}
	degB, err := section(data, l.degOff, n*4)
	if err != nil {
		return nil, err
	}
	boB, err := section(data, l.blockOffOff, (l.nBlocks+1)*8)
	if err != nil {
		return nil, err
	}
	beB, err := section(data, l.blockEdgeOff, (l.nBlocks+1)*8)
	if err != nil {
		return nil, err
	}
	stream, err := section(data, l.dataOff, dataLen)
	if err != nil {
		return nil, err
	}
	var weights []uint32
	if weighted {
		wB, err := section(data, l.weightOff, m*4)
		if err != nil {
			return nil, err
		}
		weights = u32view(wB)
	}
	return graph.NewCompressedOut(base, int(n), graph.CompressedParts{
		Deg: u32view(degB), BlockOff: u64view(boB), BlockEdge: u64view(beB), Data: stream,
	}, weights)
}

// mappedIPG1 aliases the adjacency (and IPG2 weights) out of the file;
// the uint64 offset array is rebuilt on the heap from the file's 4-byte
// degrees — 8 heap bytes per vertex, still far below a heap adjacency.
func mappedIPG1(data []byte, weighted bool, opts Options) (*graph.Graph, error) {
	base := graph.VertexID(binary.LittleEndian.Uint32(data[4:]))
	n := binary.LittleEndian.Uint64(data[8:])
	m := binary.LittleEndian.Uint64(data[16:])
	const maxN = 1 << 33
	if n > maxN || m > maxN*16 {
		return nil, fmt.Errorf("implausible binary header n=%d m=%d", n, m)
	}
	if err := opts.checkCount(n); err != nil {
		return nil, err
	}
	want := 24 + n*4 + m*4
	if weighted {
		want += m * 4
	}
	if want != uint64(len(data)) {
		return nil, fmt.Errorf("binary file size %d, header implies %d", len(data), want)
	}
	degB, err := section(data, 24, n*4)
	if err != nil {
		return nil, err
	}
	adjB, err := section(data, 24+n*4, m*4)
	if err != nil {
		return nil, err
	}
	deg := u32view(degB)
	outOff := make([]uint64, n+1)
	for i := uint64(0); i < n; i++ {
		outOff[i+1] = outOff[i] + uint64(deg[i])
	}
	if outOff[n] != m {
		return nil, fmt.Errorf("binary degree sum %d != header m=%d", outOff[n], m)
	}
	var weights []uint32
	if weighted {
		wB, err := section(data, 24+n*4+m*4, m*4)
		if err != nil {
			return nil, err
		}
		weights = u32view(wB)
	}
	return graph.FromCSR(base, outOff, idView(adjB), weights)
}
