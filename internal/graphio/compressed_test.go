package graphio

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ipregel/internal/graph"
)

var updateIPG3Golden = flag.Bool("update-ipg3-golden", false, "rewrite the IPG3 golden fixtures from the current writer")

// goldenIPG3Graph builds the deterministic graph pinned by the golden
// fixture: fixed edges, a non-zero base, degrees crossing a block
// boundary (70 vertices > one 64-vertex block), including an isolated
// vertex and a hub.
func goldenIPG3Graph() *graph.Graph {
	var b graph.Builder
	b.ForceN = 70
	b.SetBase(1)
	b.Compress()
	for i := 0; i < 69; i++ {
		b.AddEdge(1, graph.VertexID(2+i)) // hub at the base vertex
		if i%3 != 0 {
			b.AddEdge(graph.VertexID(2+i), 1)
		}
		if i%7 == 0 {
			b.AddEdge(graph.VertexID(2+i), graph.VertexID(2+(i*5)%69))
		}
	}
	return b.MustBuild()
}

func goldenIPG3Weighted() *graph.Graph {
	var wb graph.WeightedBuilder
	wb.ForceN(10)
	wb.SetBase(0)
	for i := 0; i < 25; i++ {
		wb.AddEdge(graph.VertexID(i%10), graph.VertexID((i*3)%10), uint32(100+i))
	}
	g, err := wb.MustBuild().Compress()
	if err != nil {
		panic(err)
	}
	return g
}

// TestIPG3Golden pins the on-disk IPG3 layout byte-for-byte, the same
// way the checkpoint v2 golden pins the snapshot format: any writer
// change that reshapes the bytes fails here first and must be a new
// format version, not a silent break of existing files.
func TestIPG3Golden(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"ipg3_golden.bin", goldenIPG3Graph()},
		{"ipg3_weighted_golden.bin", goldenIPG3Weighted()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, tc.g); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name)
			if *updateIPG3Golden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden fixture missing (regenerate with -update-ipg3-golden): %v", err)
			}
			got := buf.Bytes()
			if !bytes.Equal(got, want) {
				n := len(got)
				if len(want) < n {
					n = len(want)
				}
				for i := 0; i < n; i++ {
					if got[i] != want[i] {
						t.Fatalf("byte %d: got %#02x, golden %#02x (lengths %d vs %d)", i, got[i], want[i], len(got), len(want))
					}
				}
				t.Fatalf("length changed: got %d bytes, golden %d", len(got), len(want))
			}
		})
	}
}

// TestIPG3GoldenIsLive proves the checked-in fixture still loads (both
// via the streaming reader and the mmap loader) into the exact graph
// that produced it — a golden that can't be read back is pinning a
// corpse.
func TestIPG3GoldenIsLive(t *testing.T) {
	if *updateIPG3Golden {
		t.Skip("regenerating fixtures")
	}
	want := goldenIPG3Graph()
	raw, err := os.ReadFile(filepath.Join("testdata", "ipg3_golden.bin"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(raw), FormatBinary, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAdjacency(t, want, got)
	m, err := OpenMapped(filepath.Join("testdata", "ipg3_golden.bin"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	assertSameAdjacency(t, want, m.Graph())
}

// assertSameAdjacency compares two graphs edge-for-edge through the
// iterator path (backend-agnostic), plus weights when present.
func assertSameAdjacency(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() || got.Base() != want.Base() || got.HasWeights() != want.HasWeights() {
		t.Fatalf("shape mismatch: n=%d/%d m=%d/%d base=%d/%d weighted=%v/%v",
			got.N(), want.N(), got.M(), want.M(), got.Base(), want.Base(), got.HasWeights(), want.HasWeights())
	}
	var nbW, nbG graph.NeighborBuf
	for i := 0; i < want.N(); i++ {
		w := append([]graph.VertexID(nil), want.OutNeighborsWith(&nbW, i)...)
		g := got.OutNeighborsWith(&nbG, i)
		if len(w) != len(g) {
			t.Fatalf("vertex %d degree %d, want %d", i, len(g), len(w))
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("vertex %d neighbour %d: got %d, want %d", i, j, g[j], w[j])
			}
		}
		if want.HasWeights() {
			_, ww := want.OutEdgesWeightedWith(&nbW, i)
			wcopy := append([]uint32(nil), ww...)
			_, gw := got.OutEdgesWeightedWith(&nbG, i)
			for j := range wcopy {
				if wcopy[j] != gw[j] {
					t.Fatalf("vertex %d weight %d: got %d, want %d", i, j, gw[j], wcopy[j])
				}
			}
		}
	}
}

// TestIPG3RoundTrip covers flat→compressed→IPG3→read across the shape
// matrix: empty, single-vertex, hub-heavy, random, weighted, shifted
// base.
func TestIPG3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	build := func(n, m int, base graph.VertexID) *graph.Graph {
		var b graph.Builder
		b.ForceN = n
		b.SetBase(base)
		for i := 0; i < m; i++ {
			b.AddEdge(base+graph.VertexID(rng.Intn(n)), base+graph.VertexID(rng.Intn(n)))
		}
		return b.MustBuild()
	}
	star := func(n int) *graph.Graph {
		var b graph.Builder
		b.ForceN = n
		b.SetBase(0)
		for i := 1; i < n; i++ {
			b.AddEdge(0, graph.VertexID(i))
		}
		return b.MustBuild()
	}
	weighted := func(n, m int) *graph.Graph {
		var wb graph.WeightedBuilder
		wb.ForceN(n)
		wb.SetBase(0)
		for i := 0; i < m; i++ {
			wb.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)), uint32(rng.Intn(9999)))
		}
		return wb.MustBuild()
	}
	single := func() *graph.Graph {
		var b graph.Builder
		b.ForceN = 1
		return b.MustBuild()
	}
	graphs := map[string]*graph.Graph{
		"empty":       {},
		"single":      single(),
		"hub-300":     star(300),
		"random-200":  build(200, 1500, 0),
		"base-5":      build(90, 400, 5),
		"weighted-80": weighted(80, 600),
	}
	for name, flat := range graphs {
		t.Run(name, func(t *testing.T) {
			cg, err := flat.Compress()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteBinary(&buf, cg); err != nil {
				t.Fatal(err)
			}
			got, err := Read(bytes.NewReader(buf.Bytes()), FormatBinary, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if flat.M() > 0 && !got.IsCompressed() {
				t.Fatal("IPG3 read back flat")
			}
			assertSameAdjacency(t, flat, got)
			// flat → compressed → IPG3 → read → Decompress is identity.
			assertSameAdjacency(t, flat, got.Decompress())
		})
	}
}

// TestIPG3BuildInEdges checks the in-adjacency option on the IPG3
// reader matches the flat loader's.
func TestIPG3BuildInEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var b graph.Builder
	b.ForceN = 120
	for i := 0; i < 800; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(120)), graph.VertexID(rng.Intn(120)))
	}
	flat := b.MustBuild().WithInEdges()
	cg, err := flat.Compress()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, cg); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), FormatBinary, Options{BuildInEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasInEdges() {
		t.Fatal("BuildInEdges ignored")
	}
	var nb graph.NeighborBuf
	for i := 0; i < flat.N(); i++ {
		want := flat.InNeighbors(i)
		g := got.InNeighborsWith(&nb, i)
		if len(want) != len(g) {
			t.Fatalf("vertex %d in-degree %d, want %d", i, len(g), len(want))
		}
		for j := range want {
			if want[j] != g[j] {
				t.Fatalf("vertex %d in-neighbour %d: got %d, want %d", i, j, g[j], want[j])
			}
		}
	}
}

// TestOpenMapped exercises the mmap loader across all three formats and
// its error paths.
func TestOpenMapped(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(13))
	var b graph.Builder
	b.ForceN = 150
	for i := 0; i < 1000; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(150)), graph.VertexID(rng.Intn(150)))
	}
	flat := b.MustBuild()
	var wb graph.WeightedBuilder
	wb.ForceN(60)
	for i := 0; i < 300; i++ {
		wb.AddEdge(graph.VertexID(rng.Intn(60)), graph.VertexID(rng.Intn(60)), uint32(i))
	}
	wFlat := wb.MustBuild()
	cg, err := flat.Compress()
	if err != nil {
		t.Fatal(err)
	}

	write := func(name string, g *graph.Graph) string {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p1 := write("flat.bin", flat)
	p2 := write("weighted.bin", wFlat)
	p3 := write("compressed.bin", cg)

	for _, tc := range []struct {
		path string
		want *graph.Graph
		comp bool
	}{
		{p1, flat, false},
		{p2, wFlat, false},
		{p3, flat, true},
	} {
		m, err := OpenMapped(tc.path, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if m.Graph().IsCompressed() != tc.comp {
			t.Fatalf("%s: compressed=%v, want %v", tc.path, m.Graph().IsCompressed(), tc.comp)
		}
		if err := m.Graph().Validate(); err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		assertSameAdjacency(t, tc.want, m.Graph())
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}

	// BuildInEdges materialises a heap in-CSR over the mapped out-CSR.
	m, err := OpenMapped(p3, Options{BuildInEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !m.Graph().HasInEdges() {
		t.Fatal("BuildInEdges ignored by OpenMapped")
	}
	ref := flat.WithInEdges()
	var nb graph.NeighborBuf
	for i := 0; i < ref.N(); i++ {
		want := ref.InNeighbors(i)
		got := m.Graph().InNeighborsWith(&nb, i)
		if len(want) != len(got) {
			t.Fatalf("vertex %d in-degree mismatch", i)
		}
	}

	// Error paths: damage must be rejected at open time, never deferred
	// to a fault at access time.
	bad := filepath.Join(dir, "bad.bin")
	raw, _ := os.ReadFile(p3)
	if err := os.WriteFile(bad, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(bad, Options{}); err == nil {
		t.Fatal("truncated IPG3 mapped without error")
	}
	if err := os.WriteFile(bad, []byte("IPGRjunkjunkjunkjunkjunkjunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(bad, Options{}); err == nil {
		t.Fatal("bad magic mapped without error")
	}
	if _, err := OpenMapped(p1, Options{MaxVertices: 10}); err == nil {
		t.Fatal("MaxVertices not enforced by OpenMapped")
	}
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-1] ^= 0x40 // flip inside the varint stream
	if err := os.WriteFile(bad, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if m2, err := OpenMapped(bad, Options{}); err == nil {
		// A flipped trailing byte can decode to a different in-range
		// neighbour (still a valid graph); it must never crash though.
		assertValidOrFail(t, m2)
	}
}

func assertValidOrFail(t *testing.T, m *Mapped) {
	t.Helper()
	defer m.Close()
	if err := m.Graph().Validate(); err != nil {
		t.Fatalf("OpenMapped admitted a graph that fails Validate: %v", err)
	}
}
