// Package graphio reads and writes graphs in the formats the paper's
// datasets ship in — KONECT TSV (Wikipedia, Twitter, Friendster) and the
// DIMACS challenge-9 `.gr` format (USA road network) — plus a plain
// whitespace edge list and a compact binary format for fast reload.
//
// All readers stream line-by-line through bufio and tolerate comments, so
// real downloads from KONECT/DIMACS would load unmodified; the test suite
// exercises them on synthetic files with the same syntax.
package graphio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ipregel/internal/graph"
)

// Format identifies an on-disk graph encoding.
type Format int

const (
	// FormatEdgeList is whitespace-separated "src dst" pairs, '#' or '%'
	// comments allowed.
	FormatEdgeList Format = iota
	// FormatKONECT is the KONECT TSV format: a "% sym|asym ..." header
	// followed by "src dst [weight [timestamp]]" lines.
	FormatKONECT
	// FormatDIMACS is the DIMACS challenge-9 .gr format: "c" comments,
	// one "p sp N M" problem line, and "a src dst weight" arc lines.
	FormatDIMACS
	// FormatBinary is this package's compact binary encoding (binary.go).
	FormatBinary
	// FormatMETIS is the METIS partitioning format: "n m" header followed
	// by one adjacency line per vertex, 1-indexed, undirected (metis.go).
	FormatMETIS
)

// String returns the canonical name of the format.
func (f Format) String() string {
	switch f {
	case FormatEdgeList:
		return "edgelist"
	case FormatKONECT:
		return "konect"
	case FormatDIMACS:
		return "dimacs"
	case FormatBinary:
		return "binary"
	case FormatMETIS:
		return "metis"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat converts a format name ("edgelist", "konect", "dimacs",
// "binary") to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "edgelist", "el", "txt":
		return FormatEdgeList, nil
	case "konect", "tsv":
		return FormatKONECT, nil
	case "dimacs", "gr":
		return FormatDIMACS, nil
	case "binary", "bin":
		return FormatBinary, nil
	case "metis", "graph":
		return FormatMETIS, nil
	}
	return 0, fmt.Errorf("graphio: unknown format %q", s)
}

// DetectFormat guesses the format from a file extension; a trailing .gz
// is stripped first (the paper's USA-road download ships as
// USA-road-d.USA.gr.gz).
func DetectFormat(path string) Format {
	path = strings.TrimSuffix(path, ".gz")
	switch strings.ToLower(filepath.Ext(path)) {
	case ".gr":
		return FormatDIMACS
	case ".tsv", ".konect":
		return FormatKONECT
	case ".bin":
		return FormatBinary
	case ".metis", ".graph":
		return FormatMETIS
	default:
		return FormatEdgeList
	}
}

// Options controls graph construction during reading.
type Options struct {
	// Undirected inserts the reverse of every edge (KONECT "sym" headers
	// set this automatically).
	Undirected bool
	// BuildInEdges materialises the in-adjacency at load time.
	BuildInEdges bool
	// Dedup drops duplicate edges (implies sorted adjacency).
	Dedup bool
	// KeepWeights retains per-edge weights (DIMACS arc weights, or the
	// third column of an edge list); edges without a weight column get
	// weight 1. Incompatible with Undirected and Dedup.
	KeepWeights bool
	// MaxVertices rejects inputs that declare or reference more than this
	// many vertices (0 = no limit). The CSR builder sizes its arrays from
	// header counts and from the largest identifier seen, so a few hostile
	// header bytes (a DIMACS problem line, a METIS header, a binary n
	// field) or one absurd identifier can demand multi-gigabyte
	// allocations; with the cap set, parsers check those values before
	// sizing anything from them and return an error instead. Set this
	// whenever the input is untrusted; the fuzz harness always does.
	MaxVertices uint64
}

func (o Options) validate() error {
	if o.KeepWeights && (o.Undirected || o.Dedup) {
		return fmt.Errorf("graphio: KeepWeights cannot be combined with Undirected or Dedup")
	}
	return nil
}

// checkCount validates a header-declared vertex count against MaxVertices.
func (o Options) checkCount(n uint64) error {
	if o.MaxVertices > 0 && n > o.MaxVertices {
		return fmt.Errorf("graphio: input declares %d vertices, above Options.MaxVertices (%d)", n, o.MaxVertices)
	}
	return nil
}

// checkID validates one vertex identifier against MaxVertices.
func (o Options) checkID(id graph.VertexID) error {
	if o.MaxVertices > 0 && uint64(id) > o.MaxVertices {
		return fmt.Errorf("graphio: vertex identifier %d exceeds Options.MaxVertices (%d)", id, o.MaxVertices)
	}
	return nil
}

// growHint bounds a header-declared edge count before it is trusted as a
// pre-allocation size: with MaxVertices set, a lying header buys at most
// a MaxVertices-sized reservation (appends still grow as needed, and the
// declared/actual mismatch is reported after parsing).
func (o Options) growHint(m uint64) int {
	if o.MaxVertices > 0 && m > o.MaxVertices {
		m = o.MaxVertices
	}
	const maxHint = 1 << 31
	if m > maxHint {
		m = maxHint
	}
	return int(m)
}

// Read parses a graph of the given format from r.
func Read(r io.Reader, format Format, opts Options) (*graph.Graph, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.KeepWeights && format == FormatKONECT {
		return nil, fmt.Errorf("graphio: KeepWeights is not supported for KONECT inputs")
	}
	switch format {
	case FormatEdgeList:
		return readEdgeList(r, opts)
	case FormatKONECT:
		return readKONECT(r, opts)
	case FormatDIMACS:
		return readDIMACS(r, opts)
	case FormatBinary:
		return ReadBinary(r, opts)
	case FormatMETIS:
		return ReadMETIS(r, opts)
	}
	return nil, fmt.Errorf("graphio: unknown format %v", format)
}

// ReadFile opens path and parses it, guessing the format from the
// extension. Files ending in .gz are decompressed transparently.
func ReadFile(path string, opts Options) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = bufio.NewReaderSize(f, 1<<20)
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("graphio: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	return Read(r, DetectFormat(path), opts)
}

// Write encodes g to w in the given format. FormatKONECT output always
// carries an "asym" header (edges are written as stored, directed).
func Write(w io.Writer, g *graph.Graph, format Format) error {
	switch format {
	case FormatEdgeList:
		return writeEdgeList(w, g, "# ")
	case FormatKONECT:
		if _, err := fmt.Fprintln(w, "% asym unweighted"); err != nil {
			return err
		}
		return writeEdgeList(w, g, "% ")
	case FormatDIMACS:
		return writeDIMACS(w, g)
	case FormatBinary:
		return WriteBinary(w, g)
	case FormatMETIS:
		return WriteMETIS(w, g)
	}
	return fmt.Errorf("graphio: unknown format %v", format)
}

// WriteFile writes g to path, guessing the format from the extension.
// Paths ending in .gz are compressed transparently.
func WriteFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var w io.Writer = bw
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(bw)
		w = gz
	}
	if err := Write(w, g, DetectFormat(path)); err != nil {
		f.Close()
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func applyOpts(b *graph.Builder, opts Options) {
	if opts.Undirected {
		b.Undirected()
	}
	if opts.BuildInEdges {
		b.BuildInEdges()
	}
	if opts.Dedup {
		b.Dedup()
	}
}

func writeEdgeList(w io.Writer, g *graph.Graph, commentPrefix string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s|V|=%d |E|=%d base=%d\n", commentPrefix, g.N(), g.M(), g.Base())
	var werr error
	if g.HasWeights() {
		var nb graph.NeighborBuf
		for u := 0; u < g.N() && werr == nil; u++ {
			adj, ws := g.OutEdgesWeightedWith(&nb, u)
			for j, d := range adj {
				if _, werr = fmt.Fprintf(bw, "%d %d %d\n", g.Base()+graph.VertexID(u), g.Base()+d, ws[j]); werr != nil {
					break
				}
			}
		}
	} else {
		g.Edges(func(s, d graph.VertexID) bool {
			_, werr = fmt.Fprintf(bw, "%d %d\n", g.Base()+s, g.Base()+d)
			return werr == nil
		})
	}
	if werr != nil {
		return werr
	}
	return bw.Flush()
}
