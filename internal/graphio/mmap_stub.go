//go:build !unix

package graphio

import (
	"fmt"
	"os"
)

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, fmt.Errorf("memory-mapped graphs are not supported on this platform")
}

func munmapFile(data []byte) error { return nil }
