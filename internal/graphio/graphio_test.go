package graphio

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"ipregel/internal/graph"
)

func edgeSet(g *graph.Graph) map[[2]graph.VertexID]int {
	m := map[[2]graph.VertexID]int{}
	g.Edges(func(s, d graph.VertexID) bool {
		m[[2]graph.VertexID{s, d}]++
		return true
	})
	return m
}

func sameEdges(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	ea, eb := edgeSet(a), edgeSet(b)
	for k, v := range ea {
		if eb[k] != v {
			t.Fatalf("edge %v count %d vs %d", k, v, eb[k])
		}
	}
}

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var b graph.Builder
	b.ForceN = n
	b.SetBase(0)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.VertexID(rng.Intn(n)), graph.VertexID(rng.Intn(n)))
	}
	return b.MustBuild()
}

func TestEdgeListRead(t *testing.T) {
	in := `# a comment
% another comment

1 2
1	3
2 3 42 999
3 4
4 1
`
	g, err := Read(strings.NewReader(in), FormatEdgeList, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 5 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Base() != 1 {
		t.Fatalf("Base = %d, want 1", g.Base())
	}
}

func TestEdgeListBadLine(t *testing.T) {
	if _, err := Read(strings.NewReader("1 x\n"), FormatEdgeList, Options{}); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := Read(strings.NewReader("1\n"), FormatEdgeList, Options{}); err == nil {
		t.Fatal("expected parse error for missing dst")
	}
}

func TestKONECTDirected(t *testing.T) {
	in := "% asym unweighted\n% more meta\n1 2\n2 3\n"
	g, err := Read(strings.NewReader(in), FormatKONECT, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M=%d want 2", g.M())
	}
}

func TestKONECTSymmetricHeader(t *testing.T) {
	in := "% sym unweighted\n1 2\n"
	g, err := Read(strings.NewReader(in), FormatKONECT, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("sym header should double edges, M=%d", g.M())
	}
}

func TestDIMACSRead(t *testing.T) {
	in := `c USA-road-d style file
p sp 4 5
a 1 2 10
a 1 3 20
a 2 3 5
a 3 4 1
a 4 1 9
`
	g, err := Read(strings.NewReader(in), FormatDIMACS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 5 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Base() != 1 {
		t.Fatalf("DIMACS base = %d, want 1", g.Base())
	}
}

func TestDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"arc before p":    "a 1 2 3\n",
		"no problem line": "c hi\n",
		"duplicate p":     "p sp 1 0\np sp 1 0\n",
		"count mismatch":  "p sp 2 2\na 1 2 1\n",
		"unknown record":  "p sp 1 0\nz 1\n",
		"bad arc":         "p sp 2 1\na x y z\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in), FormatDIMACS, Options{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestFormatRoundTrips(t *testing.T) {
	g := randomGraph(7, 30, 120)
	for _, f := range []Format{FormatEdgeList, FormatKONECT, FormatDIMACS, FormatBinary} {
		t.Run(f.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := Write(&buf, g, f); err != nil {
				t.Fatalf("Write: %v", err)
			}
			got, err := Read(&buf, f, Options{})
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			sameEdges(t, g, got)
		})
	}
}

// Property: binary round-trip preserves any random graph exactly,
// including isolated vertices and base offsets.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16, baseRaw uint8) bool {
		n := int(nRaw%60) + 1
		m := int(mRaw % 300)
		base := graph.VertexID(baseRaw % 5)
		rng := rand.New(rand.NewSource(seed))
		var b graph.Builder
		b.ForceN = n
		b.SetBase(base)
		for i := 0; i < m; i++ {
			b.AddEdge(base+graph.VertexID(rng.Intn(n)), base+graph.VertexID(rng.Intn(n)))
		}
		g := b.MustBuild()
		var buf bytes.Buffer
		if WriteBinary(&buf, g) != nil {
			return false
		}
		if uint64(buf.Len()) != BinarySizeBytes(g.N(), g.M()) {
			return false
		}
		got, err := ReadBinary(&buf, Options{})
		if err != nil {
			return false
		}
		if got.N() != g.N() || got.M() != g.M() || got.Base() != g.Base() {
			return false
		}
		ea, eb := edgeSet(g), edgeSet(got)
		for k, v := range ea {
			if eb[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX0123456789012345678")), Options{}); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := randomGraph(3, 10, 40)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{2, 10, 30, len(data) - 3} {
		if _, err := ReadBinary(bytes.NewReader(data[:cut]), Options{}); err == nil {
			t.Fatalf("truncation at %d: expected error", cut)
		}
	}
}

func TestReadWriteFile(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(11, 20, 60)
	for _, name := range []string{"g.txt", "g.gr", "g.tsv", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g); err != nil {
			t.Fatalf("WriteFile(%s): %v", name, err)
		}
		got, err := ReadFile(path, Options{})
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", name, err)
		}
		sameEdges(t, g, got)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.txt"), Options{}); !os.IsNotExist(err) {
		t.Fatalf("expected not-exist, got %v", err)
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"edgelist": FormatEdgeList, "el": FormatEdgeList, "txt": FormatEdgeList,
		"konect": FormatKONECT, "TSV": FormatKONECT,
		"dimacs": FormatDIMACS, "gr": FormatDIMACS,
		"binary": FormatBinary, "bin": FormatBinary,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("parquet"); err == nil {
		t.Fatal("expected error for unknown format")
	}
	if s := Format(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown format String = %q", s)
	}
}

func TestDetectFormat(t *testing.T) {
	for path, want := range map[string]Format{
		"a/usa.gr": FormatDIMACS, "wiki.tsv": FormatKONECT,
		"x.bin": FormatBinary, "plain.txt": FormatEdgeList, "noext": FormatEdgeList,
	} {
		if got := DetectFormat(path); got != want {
			t.Errorf("DetectFormat(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestReadLoadsWithInEdgesAndDedup(t *testing.T) {
	in := "1 2\n1 2\n2 1\n"
	g, err := Read(strings.NewReader(in), FormatEdgeList, Options{BuildInEdges: true, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("dedup M=%d want 2", g.M())
	}
	if !g.HasInEdges() {
		t.Fatal("in-edges not built")
	}
	if g.InDegree(0) != 1 {
		t.Fatalf("InDegree(0)=%d want 1", g.InDegree(0))
	}
}

func TestDIMACSWeighted(t *testing.T) {
	in := "c weighted\np sp 3 3\na 1 2 10\na 2 3 20\na 1 3 100\n"
	g, err := Read(strings.NewReader(in), FormatDIMACS, Options{KeepWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasWeights() {
		t.Fatal("weights dropped")
	}
	adj, ws := g.OutEdgesWeighted(0)
	if len(adj) != 2 {
		t.Fatalf("degree = %d", len(adj))
	}
	sum := ws[0] + ws[1]
	if sum != 110 {
		t.Fatalf("weights %v, want {10,100}", ws)
	}
}

func TestWeightedDIMACSRoundTrip(t *testing.T) {
	var wb graph.WeightedBuilder
	wb.SetBase(1)
	wb.AddEdge(1, 2, 7)
	wb.AddEdge(2, 3, 9)
	wb.AddEdge(3, 1, 11)
	g := wb.MustBuild()
	var buf bytes.Buffer
	if err := Write(&buf, g, FormatDIMACS); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, FormatDIMACS, Options{KeepWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		wa, wwa := g.OutEdgesWeighted(u)
		wb2, wwb := got.OutEdgesWeighted(u)
		if len(wa) != len(wb2) {
			t.Fatalf("degree mismatch at %d", u)
		}
		for j := range wa {
			if wa[j] != wb2[j] || wwa[j] != wwb[j] {
				t.Fatalf("edge mismatch at %d:%d", u, j)
			}
		}
	}
}

func TestEdgeListWeightedRoundTrip(t *testing.T) {
	var wb graph.WeightedBuilder
	wb.SetBase(1)
	wb.AddEdge(1, 2, 7)
	wb.AddEdge(2, 3, 1)
	g := wb.MustBuild()
	var buf bytes.Buffer
	if err := Write(&buf, g, FormatEdgeList); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, FormatEdgeList, Options{KeepWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	_, ws := got.OutEdgesWeighted(0)
	if ws[0] != 7 {
		t.Fatalf("edge-list weight round trip: %d", ws[0])
	}
}

func TestEdgeListWeighted(t *testing.T) {
	in := "1 2 5\n2 3\n"
	g, err := Read(strings.NewReader(in), FormatEdgeList, Options{KeepWeights: true, BuildInEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	_, ws := g.OutEdgesWeighted(0)
	if ws[0] != 5 {
		t.Fatalf("w = %d, want 5", ws[0])
	}
	_, ws = g.OutEdgesWeighted(1)
	if ws[0] != 1 {
		t.Fatalf("missing weight column should default to 1, got %d", ws[0])
	}
	if !g.HasInEdges() {
		t.Fatal("in-edges not built")
	}
}

func TestKeepWeightsValidation(t *testing.T) {
	if _, err := Read(strings.NewReader("1 2\n"), FormatEdgeList, Options{KeepWeights: true, Dedup: true}); err == nil {
		t.Fatal("KeepWeights+Dedup accepted")
	}
	if _, err := Read(strings.NewReader("% sym\n1 2\n"), FormatKONECT, Options{KeepWeights: true}); err == nil {
		t.Fatal("KeepWeights+KONECT accepted")
	}
}

// The IPG2 binary variant is self-describing: weights survive the round
// trip regardless of Options, and in-edges can be requested at load.
func TestBinaryWeightedRoundTrip(t *testing.T) {
	var wb graph.WeightedBuilder
	wb.SetBase(1)
	wb.BuildInEdges()
	wb.AddEdge(1, 2, 7)
	wb.AddEdge(2, 3, 9)
	wb.AddEdge(1, 3, 11)
	wb.AddEdge(3, 1, 13)
	g := wb.MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()), Options{BuildInEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasWeights() || !got.HasInEdges() {
		t.Fatal("weighted binary lost weights or in-edges")
	}
	if got.M() != g.M() || got.Base() != 1 {
		t.Fatalf("M=%d base=%d", got.M(), got.Base())
	}
	for u := 0; u < g.N(); u++ {
		wa, wwa := g.OutEdgesWeighted(u)
		wb2, wwb := got.OutEdgesWeighted(u)
		for j := range wa {
			if wa[j] != wb2[j] || wwa[j] != wwb[j] {
				t.Fatalf("edge %d:%d mismatch", u, j)
			}
		}
	}
	// Truncated weights section errors cleanly.
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc), Options{}); err == nil {
		t.Fatal("truncated weighted binary accepted")
	}
}

func TestGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(21, 40, 160)
	for _, name := range []string{"g.gr.gz", "g.txt.gz", "g.bin.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, g); err != nil {
			t.Fatalf("WriteFile(%s): %v", name, err)
		}
		got, err := ReadFile(path, Options{})
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", name, err)
		}
		sameEdges(t, g, got)
	}
	// A .gz path containing garbage must error cleanly.
	bad := filepath.Join(dir, "bad.txt.gz")
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad, Options{}); err == nil {
		t.Fatal("garbage gzip accepted")
	}
}

func TestDetectFormatGz(t *testing.T) {
	if DetectFormat("USA-road-d.USA.gr.gz") != FormatDIMACS {
		t.Fatal("gz-wrapped DIMACS not detected")
	}
}

// Robustness: arbitrary byte soup fed to any reader must produce an
// error or a valid graph — never a panic. This is the failure-injection
// counterpart of the round-trip properties.
func TestReadersNeverPanicOnGarbage(t *testing.T) {
	f := func(data []byte, formatRaw uint8) (ok bool) {
		format := Format(formatRaw % 4)
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %v input %q: %v", format, data, r)
				ok = false
			}
		}()
		g, err := Read(bytes.NewReader(data), format, Options{})
		if err == nil && g.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Structured garbage: valid headers followed by corrupted bodies.
func TestReadersRejectCorruptedBodies(t *testing.T) {
	cases := []struct {
		format Format
		input  string
	}{
		{FormatDIMACS, "p sp 3 1\na 1 99 5\n"},        // arc out of declared range... accepted range check
		{FormatEdgeList, "1 2\n-3 4\n"},               // negative id
		{FormatEdgeList, "1 2\n3 4 5 6 7 oops\n"},     // trailing junk is ignored (weights/timestamps)
		{FormatKONECT, "% asym\nabc def\n"},           // non-numeric
		{FormatDIMACS, "p sp 2 1\na one two three\n"}, // non-numeric arc
	}
	for _, c := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%v %q panicked: %v", c.format, c.input, r)
				}
			}()
			g, err := Read(strings.NewReader(c.input), c.format, Options{})
			if err == nil {
				if verr := g.Validate(); verr != nil {
					t.Errorf("%v %q: accepted invalid graph: %v", c.format, c.input, verr)
				}
			}
		}()
	}
}

func TestMETISReadBasic(t *testing.T) {
	// The classic 7-vertex METIS manual example shape: here a triangle
	// plus a pendant vertex.
	in := "% comment\n4 4\n2 3\n1 3\n1 2 4\n3\n"
	g, err := ReadMETIS(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 8 {
		t.Fatalf("N=%d M=%d, want 4, 8", g.N(), g.M())
	}
	if g.Base() != 1 {
		t.Fatalf("base = %d, want 1", g.Base())
	}
	// Symmetric by construction.
	gi := g.WithInEdges()
	for i := 0; i < g.N(); i++ {
		if gi.OutDegree(i) != gi.InDegree(i) {
			t.Fatal("METIS graph not symmetric")
		}
	}
}

// symmetricNoLoops builds a symmetric self-loop-free random graph (METIS
// forbids self-loops).
func symmetricNoLoops(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var b graph.Builder
	b.ForceN = n
	b.SetBase(0)
	b.Dedup()
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		b.AddEdge(graph.VertexID(v), graph.VertexID(u))
	}
	return b.MustBuild()
}

func TestMETISRoundTrip(t *testing.T) {
	base := symmetricNoLoops(5, 25, 80)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, base); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMETIS(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// External identifiers shift to 1-based on write; compare degree
	// sequences and edge multiset by internal index.
	if got.N() != base.N() || got.M() != base.M() {
		t.Fatalf("round trip size: (%d,%d) vs (%d,%d)", got.N(), got.M(), base.N(), base.M())
	}
	ea, eb := edgeSet(base), edgeSet(got)
	for k, v := range ea {
		if eb[k] != v {
			t.Fatalf("edge %v: %d vs %d", k, v, eb[k])
		}
	}
}

func TestMETISEmptyAdjacencyLines(t *testing.T) {
	in := "3 1\n2\n1\n\n"
	g, err := ReadMETIS(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(2) != 0 {
		t.Fatal("vertex 3 should be isolated")
	}
}

func TestMETISErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"bad header":        "x y\n",
		"truncated":         "3 2\n2\n",
		"out of range":      "2 1\n3\n1\n",
		"endpoint mismatch": "2 2\n2\n1\n",
	}
	for name, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in), Options{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Writer rejects asymmetric (odd-edge) graphs.
	var b graph.Builder
	b.AddEdge(0, 1)
	if err := WriteMETIS(io.Discard, b.MustBuild()); err == nil {
		t.Error("odd edge count accepted by METIS writer")
	}
}

func TestMETISFileDetection(t *testing.T) {
	if DetectFormat("a.metis") != FormatMETIS || DetectFormat("b.graph") != FormatMETIS {
		t.Fatal("METIS extension detection")
	}
	f, err := ParseFormat("metis")
	if err != nil || f != FormatMETIS {
		t.Fatal("ParseFormat metis")
	}
	dir := t.TempDir()
	g := symmetricNoLoops(9, 12, 40)
	path := filepath.Join(dir, "g.metis")
	if err := WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.M() != g.M() {
		t.Fatalf("file round trip M=%d want %d", got.M(), g.M())
	}
}

func TestVertexIDOverflow(t *testing.T) {
	if _, err := Read(strings.NewReader("1 99999999999\n"), FormatEdgeList, Options{}); err == nil {
		t.Fatal("expected 32-bit overflow error")
	}
}
