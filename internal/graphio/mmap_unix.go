//go:build unix

package graphio

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the file read-only and shared: neighbour pages load
// lazily and the kernel may evict them under memory pressure, which is
// the whole point of the mmap backend.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return []byte{}, nil
	}
	if size < 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("file size %d not mappable", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
