package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig7", "fig8", "fig9", "table1", "table2", "mem-projection", "shm-baseline"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "table1", "-divisor", "4096", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Wikipedia") {
		t.Fatalf("table1 output:\n%s", sb.String())
	}
}

func TestRunWithCSV(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-exp", "fig7", "-divisor", "8192", "-quick", "-csv", dir, "-pagerank-rounds", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("no action accepted")
	}
	if err := run([]string{"-exp", "bogus"}, &sb); err == nil {
		t.Fatal("bogus experiment accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestShardFlagValidation mirrors ipregel-run's checks: -overlap and
// -steal are shard-scheduler features and are rejected without
// -shards > 1, while a sharded overlap+steal experiment runs normally.
func TestShardFlagValidation(t *testing.T) {
	cases := []struct {
		args    []string
		wantSub string
	}{
		{[]string{"-exp", "table1", "-shards", "0"}, "-shards must be at least 1"},
		{[]string{"-exp", "table1", "-overlap"}, "needs -shards > 1"},
		{[]string{"-exp", "table1", "-shards", "1", "-overlap"}, "needs -shards > 1"},
		{[]string{"-exp", "table1", "-steal"}, "needs -shards > 1"},
		{[]string{"-exp", "table1", "-shards", "1", "-steal"}, "needs -shards > 1"},
	}
	for _, c := range cases {
		var sb strings.Builder
		err := run(c.args, &sb)
		if err == nil {
			t.Fatalf("args %v: expected error", c.args)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("args %v: error %q does not mention %q", c.args, err, c.wantSub)
		}
	}
	var sb strings.Builder
	if err := run([]string{"-exp", "table1", "-divisor", "4096", "-quick", "-shards", "2", "-overlap", "-steal"}, &sb); err != nil {
		t.Fatalf("sharded overlap experiment: %v\n%s", err, sb.String())
	}
}
