package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig7", "fig8", "fig9", "table1", "table2", "mem-projection", "shm-baseline"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "table1", "-divisor", "4096", "-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Wikipedia") {
		t.Fatalf("table1 output:\n%s", sb.String())
	}
}

func TestRunWithCSV(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-exp", "fig7", "-divisor", "8192", "-quick", "-csv", dir, "-pagerank-rounds", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig7.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("no action accepted")
	}
	if err := run([]string{"-exp", "bogus"}, &sb); err == nil {
		t.Fatal("bogus experiment accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}
