// Command ipregel-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ipregel-bench -list
//	ipregel-bench -exp fig7 [-divisor 64] [-threads 2] [-quick]
//	ipregel-bench -all -quick [-csv results/]
//
// Each experiment prints the same rows/series the corresponding paper
// artefact reports, at the configured synthetic-graph scale (see
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ipregel/internal/bench"
	"ipregel/internal/core"
	"ipregel/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ipregel-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ipregel-bench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		exp     = fs.String("exp", "", "experiment id to run (see -list)")
		all     = fs.Bool("all", false, "run every experiment")
		list    = fs.Bool("list", false, "list experiments")
		divisor = fs.Int("divisor", 0, "graph scale divisor (default 64 = 1/64 of the paper's graphs)")
		threads = fs.Int("threads", 0, "iPregel worker threads (default GOMAXPROCS)")
		shards  = fs.Int("shards", 1, "iPregel execution shards (1 = classic single-shard engine; pull-combiner cells stay single-shard)")
		overlap = fs.Bool("overlap", false, "overlap cross-shard delivery with compute (with -shards > 1)")
		steal   = fs.Bool("steal", false, "work-stealing shard scheduler (with -shards > 1)")
		quick   = fs.Bool("quick", false, "fewer repetitions and smaller sweeps")
		backend = fs.String("graph-backend", "flat", "adjacency storage for experiment graphs: flat | compressed | mmap")
		dirFlag = fs.String("direction", "push", "message transport for every iPregel engine: push | pull | adaptive (pull-combiner cells keep their legacy transport)")
		rounds  = fs.Int("pagerank-rounds", 0, "PageRank iterations (default 30, as in the paper)")
		csvDir  = fs.String("csv", "", "also write figure data series as CSV files into this directory")
		telAddr = fs.String("telemetry", "", "serve live /metrics, expvar and /debug/pprof on this address (e.g. :8080) while experiments run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var observers []core.Observer
	if *telAddr != "" {
		c := telemetry.NewCollector()
		srv, err := telemetry.Serve(*telAddr, c)
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(out, "telemetry: serving /metrics, /debug/vars and /debug/pprof on %s\n", srv.Addr)
		observers = append(observers, c)
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(out, "%-22s %s\n", e.ID, e.Title)
		}
		return nil
	}

	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", *shards)
	}
	if *overlap && *shards <= 1 {
		return fmt.Errorf("-overlap overlaps cross-shard delivery with compute; it needs -shards > 1")
	}
	if *steal && *shards <= 1 {
		return fmt.Errorf("-steal schedules (shard, slot-range) tasks; it needs -shards > 1")
	}
	dir, err := core.ParseDirection(*dirFlag)
	if err != nil {
		return err
	}
	o := &bench.Options{Divisor: *divisor, Threads: *threads, Shards: *shards, Overlap: *overlap, Steal: *steal, Quick: *quick, PRRounds: *rounds, CSVDir: *csvDir, Observers: observers, Backend: *backend, Direction: dir}
	defer o.Close()
	switch {
	case *all:
		return bench.RunAll(o, out)
	case *exp != "":
		return bench.Run(*exp, o, out)
	}
	fs.Usage()
	return fmt.Errorf("nothing to do: pass -list, -exp <id> or -all")
}
