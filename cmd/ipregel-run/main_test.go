package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
	}
	return sb.String()
}

func TestRunAppsOnGeneratedGraphs(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-app", "pagerank", "-graph", "rmat:8:4", "-combiner", "broadcast", "-rounds", "5"}, "broadcast"},
		{[]string{"-app", "hashmin", "-graph", "ring:30", "-combiner", "spinlock", "-bypass"}, "components: 1"},
		{[]string{"-app", "sssp", "-graph", "road:10:10", "-combiner", "mutex", "-source", "1"}, "reached: 100 of 100"},
		{[]string{"-app", "bfs", "-graph", "chain:10", "-source", "0"}, "reached: 10 of 10"},
		{[]string{"-app", "wsssp", "-graph", "road:8:8", "-combiner", "spinlock", "-source", "1"}, "reached: 64 of 64"},
		{[]string{"-app", "pagerank-converged", "-graph", "rmat:7:4", "-combiner", "spinlock"}, "converged in"},
		{[]string{"-app", "pagerank", "-graph", "ring:20", "-framework", "pregelplus", "-nodes", "3", "-rounds", "3"}, "Pregel+ 3 node(s)"},
		{[]string{"-app", "sssp", "-graph", "ring:20", "-framework", "femtograph"}, "femtograph-style"},
		{[]string{"-app", "hashmin", "-graph", "ring:10", "-v"}, "superstep"},
		{[]string{"-app", "wcc", "-graph", "chain:10"}, "weak components: 1"},
		{[]string{"-app", "scc", "-graph", "ring:12"}, "strong components: 1"},
		{[]string{"-app", "reach64", "-graph", "chain:10", "-source", "0"}, "reached: 10 of 10"},
	}
	for _, c := range cases {
		out := runOK(t, c.args...)
		if !strings.Contains(out, c.want) {
			t.Fatalf("args %v: output missing %q:\n%s", c.args, c.want, out)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("1 2\n2 3\n3 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-app", "hashmin", "-graph-file", path)
	if !strings.Contains(out, "components: 1") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunWeightedFromDIMACSFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.gr")
	if err := os.WriteFile(path, []byte("p sp 3 3\na 1 2 5\na 2 3 5\na 1 3 100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-app", "wsssp", "-graph-file", path, "-source", "1")
	if !strings.Contains(out, "reached: 3 of 3") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-app", "nope", "-graph", "ring:5"},
		{"-graph", "bogus"},
		{"-combiner", "bogus", "-graph", "ring:5"},
		{"-addressing", "bogus", "-graph", "ring:5"},
		{"-framework", "bogus", "-graph", "ring:5"},
		{"-app", "wsssp", "-graph", "ring:5"},                           // weighted needs road spec or file
		{"-app", "bfs", "-graph", "ring:5", "-framework", "pregelplus"}, // unsupported on baseline
		{"-app", "bfs", "-graph", "ring:5", "-framework", "femtograph"}, // unsupported on baseline
		{"-app", "pagerank", "-graph", "ring:5", "-bypass"},             // PageRank under bypass (§4)
		{"-badflag"},
	} {
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}
