package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, sb.String())
	}
	return sb.String()
}

func TestRunAppsOnGeneratedGraphs(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-app", "pagerank", "-graph", "rmat:8:4", "-combiner", "broadcast", "-rounds", "5"}, "broadcast"},
		{[]string{"-app", "hashmin", "-graph", "ring:30", "-combiner", "spinlock", "-bypass"}, "components: 1"},
		{[]string{"-app", "sssp", "-graph", "road:10:10", "-combiner", "mutex", "-source", "1"}, "reached: 100 of 100"},
		{[]string{"-app", "bfs", "-graph", "chain:10", "-source", "0"}, "reached: 10 of 10"},
		{[]string{"-app", "wsssp", "-graph", "road:8:8", "-combiner", "spinlock", "-source", "1"}, "reached: 64 of 64"},
		{[]string{"-app", "pagerank-converged", "-graph", "rmat:7:4", "-combiner", "spinlock"}, "converged in"},
		{[]string{"-app", "pagerank", "-graph", "ring:20", "-framework", "pregelplus", "-nodes", "3", "-rounds", "3"}, "Pregel+ 3 node(s)"},
		{[]string{"-app", "sssp", "-graph", "ring:20", "-framework", "femtograph"}, "femtograph-style"},
		{[]string{"-app", "hashmin", "-graph", "ring:10", "-v"}, "superstep"},
		{[]string{"-app", "wcc", "-graph", "chain:10"}, "weak components: 1"},
		{[]string{"-app", "sssp", "-graph", "road:10:10", "-combiner", "atomic", "-shards", "4", "-source", "1"}, "reached: 100 of 100"},
		{[]string{"-app", "hashmin", "-graph", "ring:30", "-shards", "2", "-partition", "hash", "-bypass"}, "components: 1"},
		{[]string{"-app", "sssp", "-graph", "road:10:10", "-shards", "4", "-overlap", "-steal", "-source", "1"}, "reached: 100 of 100"},
		{[]string{"-app", "hashmin", "-graph", "ring:30", "-shards", "2", "-overlap", "-bypass"}, "components: 1"},
		{[]string{"-app", "scc", "-graph", "ring:12"}, "strong components: 1"},
		{[]string{"-app", "reach64", "-graph", "chain:10", "-source", "0"}, "reached: 10 of 10"},
	}
	for _, c := range cases {
		out := runOK(t, c.args...)
		if !strings.Contains(out, c.want) {
			t.Fatalf("args %v: output missing %q:\n%s", c.args, c.want, out)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("1 2\n2 3\n3 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-app", "hashmin", "-graph-file", path)
	if !strings.Contains(out, "components: 1") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunWeightedFromDIMACSFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.gr")
	if err := os.WriteFile(path, []byte("p sp 3 3\na 1 2 5\na 2 3 5\na 1 3 100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runOK(t, "-app", "wsssp", "-graph-file", path, "-source", "1")
	if !strings.Contains(out, "reached: 3 of 3") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-app", "nope", "-graph", "ring:5"},
		{"-graph", "bogus"},
		{"-combiner", "bogus", "-graph", "ring:5"},
		{"-addressing", "bogus", "-graph", "ring:5"},
		{"-framework", "bogus", "-graph", "ring:5"},
		{"-app", "wsssp", "-graph", "ring:5"},                           // weighted needs road spec or file
		{"-app", "bfs", "-graph", "ring:5", "-framework", "pregelplus"}, // unsupported on baseline
		{"-app", "bfs", "-graph", "ring:5", "-framework", "femtograph"}, // unsupported on baseline
		{"-app", "pagerank", "-graph", "ring:5", "-bypass"},             // PageRank under bypass (§4)
		{"-badflag"},
	} {
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}

// TestRunFlagValidation pins the -threads/-shards argument checks: an
// explicit non-positive -threads is a usage error (the unset default 0
// still means GOMAXPROCS), and -shards must be positive and is an
// iPregel-only feature.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		args    []string
		wantSub string
	}{
		{[]string{"-threads", "0", "-graph", "ring:5"}, "-threads must be at least 1"},
		{[]string{"-threads", "-2", "-graph", "ring:5"}, "-threads must be at least 1"},
		{[]string{"-shards", "0", "-graph", "ring:5"}, "-shards must be at least 1"},
		{[]string{"-shards", "-1", "-graph", "ring:5"}, "-shards must be at least 1"},
		{[]string{"-shards", "2", "-framework", "pregelplus", "-graph", "ring:5"}, "does not support"},
		{[]string{"-shards", "2", "-partition", "bogus", "-graph", "ring:5"}, "partition"},
		{[]string{"-overlap", "-graph", "ring:5"}, "-overlap"},
		{[]string{"-overlap", "-shards", "1", "-graph", "ring:5"}, "needs -shards > 1"},
		{[]string{"-steal", "-graph", "ring:5"}, "-steal"},
		{[]string{"-steal", "-shards", "1", "-graph", "ring:5"}, "needs -shards > 1"},
	}
	for _, c := range cases {
		var sb strings.Builder
		err := run(c.args, &sb)
		if err == nil {
			t.Fatalf("args %v: expected error", c.args)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("args %v: error %q does not mention %q", c.args, err, c.wantSub)
		}
	}
	// The untouched default (-threads omitted) must keep meaning "all
	// processors" — no error.
	runOK(t, "-app", "hashmin", "-graph", "ring:10")
	// Sharded broadcast used to be rejected; it now normalises onto the
	// shard-aware hybrid pull transport and runs.
	runOK(t, "-app", "hashmin", "-graph", "ring:10", "-shards", "2", "-combiner", "broadcast")
}

// TestRunRecoverable drives the -checkpoint-dir / -chaos path: every
// supported app survives an injected mid-run panic, reports the
// recovery, and still prints its usual summary line.
func TestRunRecoverable(t *testing.T) {
	cases := []struct {
		app  string
		args []string
		want string
	}{
		{"sssp", []string{"-graph", "road:10:10", "-combiner", "spinlock", "-bypass", "-source", "1"}, "reached: 100 of 100"},
		{"hashmin", []string{"-graph", "road:8:8", "-combiner", "atomic"}, "components: 1"},
		{"sssp", []string{"-graph", "road:10:10", "-combiner", "atomic", "-shards", "4", "-source", "1"}, "reached: 100 of 100"},
		{"pagerank", []string{"-graph", "rmat:7:4", "-rounds", "8"}, "ranks computed for 128 vertices"},
		{"pagerank-converged", []string{"-graph", "rmat:7:4"}, "converged in"},
	}
	for _, c := range cases {
		args := append([]string{
			"-app", c.app,
			"-checkpoint-dir", t.TempDir(),
			"-checkpoint-every", "2",
			"-chaos", "seed=11,panic@3",
		}, c.args...)
		out := runOK(t, args...)
		for _, want := range []string{c.want, "recovery: attempt 1 failed", "chaos: fired panic@3", "recoveries=1"} {
			if !strings.Contains(out, want) {
				t.Fatalf("app %s: output missing %q:\n%s", c.app, want, out)
			}
		}
	}
}

// TestRunRecoverableResumesAcrossInvocations covers the operator story:
// a run killed by fault exhaustion leaves checkpoints behind, and a
// second invocation pointed at the same directory resumes from them
// instead of superstep 0.
func TestRunRecoverableResumesAcrossInvocations(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-app", "sssp", "-graph", "road:10:10", "-combiner", "spinlock", "-source", "1",
		"-checkpoint-dir", dir, "-checkpoint-every", "2"}

	// First invocation: one attempt, killed at superstep 5 → exhaustion.
	var sb strings.Builder
	args := append([]string{"-chaos", "seed=1,panic@5", "-recover-attempts", "1"}, base...)
	if err := run(args, &sb); err == nil || !strings.Contains(err.Error(), "after 1 attempts") {
		t.Fatalf("first invocation: err = %v, want attempt exhaustion\n%s", err, sb.String())
	}

	// Second invocation, same directory, no faults: must resume mid-run.
	out := runOK(t, base...)
	if !strings.Contains(out, "reached: 100 of 100") {
		t.Fatalf("resumed run did not finish:\n%s", out)
	}
}

// TestRunRecoverableErrors pins the flag-validation and app-support
// errors of the recovery path.
func TestRunRecoverableErrors(t *testing.T) {
	var sb strings.Builder
	for _, args := range [][]string{
		{"-chaos", "panic@3", "-graph", "ring:5"},                                                  // -chaos without -checkpoint-dir
		{"-checkpoint-dir", "x", "-framework", "pregelplus", "-graph", "ring:5"},                   // wrong framework
		{"-app", "scc", "-checkpoint-dir", "x", "-graph", "ring:5"},                                // unsupported app
		{"-app", "sssp", "-checkpoint-dir", "x", "-chaos", "panic@3,seed=1", "-graph", "ring:5"},   // bad spec: seed must lead
		{"-app", "sssp", "-checkpoint-dir", "x", "-chaos", "seed=1,explode@3", "-graph", "ring:5"}, // unknown fault
	} {
		if err := run(args, &sb); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}
