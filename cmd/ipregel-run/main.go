// Command ipregel-run executes one vertex-centric application on one
// graph with one iPregel engine version, printing runtime, superstep and
// memory statistics — the single-experiment workhorse.
//
// Usage:
//
//	ipregel-run -app pagerank -graph wiki -combiner broadcast
//	ipregel-run -app sssp -graph usa -combiner spinlock -bypass -source 2
//	ipregel-run -app hashmin -graph-file path/to/usa.gr.gz -combiner mutex
//	ipregel-run -app wsssp -graph road:200:200 -combiner spinlock -bypass
//	ipregel-run -app pagerank -graph rmat:16:8 -framework pregelplus -nodes 4
//
// Graphs come either from a file (-graph-file, format by extension:
// .gr DIMACS, .tsv KONECT, .bin binary, .gz variants, else edge list) or
// from a generator spec (-graph, see internal/gen.ByName).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ipregel/internal/algorithms"
	"ipregel/internal/core"
	"ipregel/internal/gen"
	"ipregel/internal/graph"
	"ipregel/internal/graphio"
	"ipregel/internal/memmodel"
	"ipregel/internal/pregelplus"
	"ipregel/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ipregel-run:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ipregel-run", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		app       = fs.String("app", "pagerank", "application: pagerank | pagerank-converged | hashmin | wcc | scc | sssp | wsssp | bfs | reach64")
		graphSpec = fs.String("graph", "wiki", "generator spec (wiki | usa | twitter | friendster | rmat:s:ef | road:r:c | er:n:m | ring:n | star:n | chain:n)")
		graphFile = fs.String("graph-file", "", "load a graph file instead of generating")
		backend   = fs.String("graph-backend", "flat", "adjacency storage: flat | compressed (delta+varint blocks) | mmap (map a .bin graph file read-only; requires -graph-file)")
		divisor   = fs.Int("divisor", 0, "scale divisor for preset graphs (default 64)")
		framework = fs.String("framework", "ipregel", "ipregel | pregelplus | femtograph (see DESIGN.md)")
		combiner  = fs.String("combiner", "spinlock", "iPregel combiner: mutex | spinlock | atomic | broadcast")
		address   = fs.String("addressing", "offset", "iPregel addressing: direct | offset | desolate | hashmap")
		schedule  = fs.String("schedule", "static", "iPregel compute-phase schedule: static | dynamic | edge-balanced")
		combining = fs.Bool("sender-combining", false, "pre-combine repeated sends worker-locally before touching the shared mailbox (push combiners)")
		bypass    = fs.Bool("bypass", false, "enable selection bypass (Hashmin/SSSP only)")
		threads   = fs.Int("threads", 0, "worker threads (default GOMAXPROCS)")
		shards    = fs.Int("shards", 1, "iPregel execution shards: partitioned slot space with per-shard mailboxes (1 = classic single-shard engine)")
		partition = fs.String("partition", "range", "iPregel shard partitioner: range | hash (with -shards > 1)")
		overlap   = fs.Bool("overlap", false, "overlap cross-shard delivery with compute via per-shard drainers (with -shards > 1)")
		steal     = fs.Bool("steal", false, "work-stealing shard scheduler: dynamic (shard, slot-range) task queues (with -shards > 1)")
		direction = fs.String("direction", "push", "iPregel message transport per superstep: push | pull | adaptive (density-switched; broadcast-only apps)")
		dirThresh = fs.Float64("direction-threshold", 0, "adaptive direction: pull when the frontier's out-edges reach this fraction of |E| (default 0.05)")
		hubSplit  = fs.Bool("hub-split", false, "fan high-out-degree broadcasts out as parallel chunked subtasks")
		hubCut    = fs.Int("hub-cut", 0, "out-degree above which a broadcast is split (default: p99.9 of the degree distribution; with -hub-split)")
		rounds    = fs.Int("rounds", 30, "PageRank iterations")
		source    = fs.Uint("source", 2, "SSSP/BFS source vertex identifier")
		nodes     = fs.Int("nodes", 1, "pregelplus: simulated node count")
		verbose   = fs.Bool("v", false, "print per-superstep statistics")
		telAddr   = fs.String("telemetry", "", "serve live /metrics, expvar and /debug/pprof on this address (e.g. :8080) during the run")
		telHold   = fs.Duration("telemetry-hold", 0, "keep the telemetry endpoint up this long after the run (for scrapers)")
		traceOut  = fs.String("trace", "", "stream per-superstep JSONL trace events to this file ('-' for stdout; replay with ipregel-trace)")
		ckptDir   = fs.String("checkpoint-dir", "", "persist checkpoints to this directory and run under the crash-recovery supervisor (pagerank | pagerank-converged | hashmin | sssp)")
		ckptEvery = fs.Int("checkpoint-every", 8, "checkpoint after every multiple of this many supersteps (with -checkpoint-dir)")
		ckptKeep  = fs.Int("checkpoint-keep", 3, "checkpoints retained in -checkpoint-dir (0 keeps all)")
		attempts  = fs.Int("recover-attempts", 3, "total run attempts before the recovery supervisor gives up (with -checkpoint-dir)")
		chaosSpec = fs.String("chaos", "", "inject faults per this spec, e.g. 'seed=7,panic@3,sink@5' (requires -checkpoint-dir; see internal/chaos)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// -threads 0 means "use GOMAXPROCS", but only as the untouched
	// default: an explicit -threads 0 (or negative) is a mistake the
	// engine would silently paper over, so reject it here.
	var threadsSet bool
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "threads" {
			threadsSet = true
		}
	})
	if threadsSet && *threads < 1 {
		return fmt.Errorf("-threads must be at least 1 (got %d); omit the flag to use all processors", *threads)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", *shards)
	}
	if *shards > 1 && *framework != "ipregel" {
		return fmt.Errorf("-shards is an iPregel engine feature; -framework %s does not support it", *framework)
	}
	if *overlap && *shards <= 1 {
		return fmt.Errorf("-overlap overlaps cross-shard delivery with compute; it needs -shards > 1")
	}
	if *steal && *shards <= 1 {
		return fmt.Errorf("-steal schedules (shard, slot-range) tasks; it needs -shards > 1")
	}
	if *chaosSpec != "" && *ckptDir == "" {
		return fmt.Errorf("-chaos needs -checkpoint-dir: injected faults are only survivable with checkpoints")
	}
	if *ckptDir != "" && *framework != "ipregel" {
		return fmt.Errorf("-checkpoint-dir requires -framework ipregel, not %q", *framework)
	}
	if *backend != "flat" {
		// The non-flat backends drop the shared-slice adjacency accessors,
		// which the comparison frameworks rely on; every iPregel app
		// (including scc's trim/Tarjan walks) goes through the iterator
		// path and runs on any backend.
		if *framework != "ipregel" {
			return fmt.Errorf("-graph-backend %s requires -framework ipregel; the %s baseline walks the flat CSR directly", *backend, *framework)
		}
	}
	dir, derr := core.ParseDirection(*direction)
	if derr != nil {
		return derr
	}
	if (dir != core.DirectionPush || *hubSplit) && *framework != "ipregel" {
		return fmt.Errorf("-direction and -hub-split are iPregel engine features; -framework %s does not support them", *framework)
	}

	var g *graph.Graph
	var err error
	switch *backend {
	case "flat", "compressed":
		if g, err = loadGraph(out, *graphFile, *graphSpec, *divisor, *app == "wsssp"); err != nil {
			return err
		}
		if *backend == "compressed" {
			// Re-encode the loaded CSR in place (neighbour order preserved,
			// so results are identical to the flat run).
			start := time.Now()
			if g, err = g.Compress(); err != nil {
				return err
			}
			fmt.Fprintf(out, "adjacency compressed in %v: %s resident\n", time.Since(start).Round(time.Millisecond), memmodel.GB(g.MemoryBytes()))
		}
	case "mmap":
		if *graphFile == "" {
			return fmt.Errorf("-graph-backend mmap maps a binary graph file: pass one with -graph-file")
		}
		start := time.Now()
		m, err := graphio.OpenMapped(*graphFile, graphio.Options{BuildInEdges: *app != "wsssp", KeepWeights: *app == "wsssp"})
		if err != nil {
			return err
		}
		defer m.Close()
		g = m.Graph()
		fmt.Fprintf(out, "mapped %s read-only in %v (%s on file-backed pages, %s heap)\n",
			*graphFile, time.Since(start).Round(time.Millisecond), memmodel.GB(m.MappedBytes()), memmodel.GB(g.MemoryBytes()))
	default:
		return fmt.Errorf("unknown graph backend %q (flat | compressed | mmap)", *backend)
	}
	fmt.Fprintln(out, graph.ComputeStats(*graphSpec, g))

	switch *framework {
	case "pregelplus":
		return runPregelPlus(out, g, *app, *rounds, graph.VertexID(*source), *nodes)
	case "femtograph":
		return runFemtograph(out, g, *app, *rounds, graph.VertexID(*source), *threads)
	case "ipregel":
	default:
		return fmt.Errorf("unknown framework %q", *framework)
	}

	comb, err := core.ParseCombiner(*combiner)
	if err != nil {
		return err
	}
	addr, err := core.ParseAddressing(*address)
	if err != nil {
		return err
	}
	sched, err := core.ParseSchedule(*schedule)
	if err != nil {
		return err
	}
	part, err := core.ParsePartition(*partition)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Combiner:           comb,
		Addressing:         addr,
		Schedule:           sched,
		SenderCombining:    *combining,
		SelectionBypass:    *bypass,
		Threads:            *threads,
		Shards:             *shards,
		Partition:          part,
		OverlapDelivery:    *overlap,
		WorkStealing:       *steal,
		Direction:          dir,
		DirectionThreshold: *dirThresh,
		HubSplit:           *hubSplit,
		HubDegreeCut:       *hubCut,
	}

	// Telemetry sinks observe the engine via Config.Observers; all hooks
	// fire at superstep barriers on the coordinating goroutine.
	if *telAddr != "" {
		srv, err := telemetry.Serve(*telAddr, telemetryCollector())
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		fmt.Fprintf(out, "telemetry: serving /metrics, /debug/vars and /debug/pprof on %s\n", srv.Addr)
		defer func() {
			if *telHold > 0 {
				fmt.Fprintf(out, "telemetry: holding %s on %v for scrapers\n", srv.Addr, *telHold)
				time.Sleep(*telHold)
			}
			srv.Close()
		}()
		cfg.Observers = append(cfg.Observers, telemetryCollector())
	}
	if *traceOut != "" {
		w, closeTrace, err := openTraceSink(*traceOut, out)
		if err != nil {
			return err
		}
		defer closeTrace()
		cfg.Observers = append(cfg.Observers, w)
	}

	if *ckptDir != "" {
		rf := recoveryFlags{dir: *ckptDir, every: *ckptEvery, keep: *ckptKeep, attempts: *attempts, chaos: *chaosSpec}
		var rep core.Report
		peak, baseline := memmodel.MeasurePeakHeap(func() {
			rep, err = runRecoverable(out, g, cfg, rf, *app, *rounds, graph.VertexID(*source))
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, rep)
		fmt.Fprintf(out, "peak heap: %s (baseline %s)\n", memmodel.GB(peak), memmodel.GB(baseline))
		if *verbose {
			fmt.Fprint(out, rep.Table())
		}
		return nil
	}

	var rep core.Report
	peak, baseline := memmodel.MeasurePeakHeap(func() {
		switch *app {
		case "pagerank":
			_, rep, err = algorithms.PageRank(g, cfg, *rounds)
		case "hashmin":
			var labels []uint32
			labels, rep, err = algorithms.Hashmin(g, cfg)
			if err == nil {
				fmt.Fprintf(out, "components: %d\n", algorithms.ComponentCount(labels))
			}
		case "sssp":
			var dist []uint32
			dist, rep, err = algorithms.SSSP(g, cfg, graph.VertexID(*source))
			if err == nil {
				fmt.Fprintf(out, "reached: %d of %d vertices\n", countReached(dist), len(dist))
			}
		case "wsssp":
			var dist []uint32
			dist, rep, err = algorithms.WeightedSSSP(g, cfg, graph.VertexID(*source))
			if err == nil {
				fmt.Fprintf(out, "reached: %d of %d vertices\n", countReached(dist), len(dist))
			}
		case "pagerank-converged":
			var ranks []float64
			ranks, rep, err = algorithms.PageRankConverged(g, cfg, 1e-9)
			if err == nil {
				fmt.Fprintf(out, "converged in %d supersteps over %d vertices\n", rep.Supersteps, len(ranks))
			}
		case "bfs":
			var states []algorithms.BFSState
			states, rep, err = algorithms.BFS(g, cfg, graph.VertexID(*source))
			if err == nil {
				n := 0
				for _, s := range states {
					if s.Depth != algorithms.Infinity {
						n++
					}
				}
				fmt.Fprintf(out, "reached: %d of %d vertices\n", n, len(states))
			}
		case "wcc":
			var labels []uint32
			labels, rep, err = algorithms.WCC(g, cfg)
			if err == nil {
				fmt.Fprintf(out, "weak components: %d\n", algorithms.ComponentCount(labels))
			}
		case "scc":
			var labels []uint32
			labels, err = algorithms.SCC(g, cfg)
			if err == nil {
				fmt.Fprintf(out, "strong components: %d\n", algorithms.ComponentCount(labels))
			}
		case "reach64":
			var masks []uint64
			seeds := []graph.VertexID{graph.VertexID(*source)}
			masks, rep, err = algorithms.Reach64(g, cfg, seeds)
			if err == nil {
				n := 0
				for _, m := range masks {
					if m != 0 {
						n++
					}
				}
				fmt.Fprintf(out, "reached: %d of %d vertices\n", n, len(masks))
			}
		default:
			err = fmt.Errorf("unknown app %q", *app)
		}
	})
	if err != nil {
		if rep.Aborted {
			// Print the (consistent) partial report so an aborted run's
			// statistics are not lost with the error.
			fmt.Fprintln(out, rep)
		}
		return err
	}
	fmt.Fprintln(out, rep)
	if cfg.SenderCombining && rep.TotalMessages > 0 {
		fmt.Fprintf(out, "sender-side combining: %d of %d sends combined worker-locally (%.0f%%)\n",
			rep.TotalLocalCombines, rep.TotalMessages, 100*float64(rep.TotalLocalCombines)/float64(rep.TotalMessages))
	}
	fmt.Fprintf(out, "peak heap: %s (baseline %s)\n", memmodel.GB(peak), memmodel.GB(baseline))
	if *verbose {
		fmt.Fprint(out, rep.Table())
	}
	return nil
}

func loadGraph(out io.Writer, file, spec string, divisor int, weighted bool) (*graph.Graph, error) {
	start := time.Now()
	var g *graph.Graph
	var err error
	switch {
	case file != "":
		g, err = graphio.ReadFile(file, graphio.Options{BuildInEdges: !weighted, KeepWeights: weighted})
	case weighted:
		// Weighted runs on generated graphs use a weighted road grid:
		// "road:<rows>:<cols>" (weights drawn from [1, 1000]).
		var r, c int
		if _, serr := fmt.Sscanf(spec, "road:%d:%d", &r, &c); serr != nil {
			return nil, fmt.Errorf("wsssp needs -graph-file (DIMACS with weights) or -graph road:<rows>:<cols>")
		}
		g = gen.WeightedRoad(gen.RoadParams{Rows: r, Cols: c, Base: 1, Seed: 1}, 1, 1000)
	default:
		g, err = gen.ByName(spec, gen.PresetParams{Divisor: divisor, BuildInEdges: true})
	}
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "graph ready in %v (loading excluded from runtime, as in the paper §7.1.2)\n", time.Since(start).Round(time.Millisecond))
	return g, nil
}

func runPregelPlus(out io.Writer, g *graph.Graph, app string, rounds int, source graph.VertexID, nodes int) error {
	cfg := pregelplus.ClusterConfig{Nodes: nodes, ProcsPerNode: 2}
	var rep pregelplus.Report
	var err error
	switch app {
	case "pagerank":
		_, rep, err = pregelplus.PageRank(g, cfg, rounds)
	case "hashmin":
		_, rep, err = pregelplus.Hashmin(g, cfg)
	case "sssp":
		_, rep, err = pregelplus.SSSP(g, cfg, source)
	default:
		return fmt.Errorf("pregelplus supports pagerank | hashmin | sssp, not %q", app)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Pregel+ %d node(s): simulated %v (compute %v + network %v), %d supersteps, %d messages, %s on the wire, peak framework memory %s\n",
		nodes, rep.SimTime.Round(time.Microsecond), rep.ComputeTime.Round(time.Microsecond), rep.NetTime.Round(time.Microsecond),
		rep.Supersteps, rep.Messages, memmodel.GB(rep.WireBytes), memmodel.GB(rep.PeakMemoryBytes))
	return nil
}

func runFemtograph(out io.Writer, g *graph.Graph, app string, rounds int, source graph.VertexID, threads int) error {
	// Imported lazily via the bench experiment normally; direct runs go
	// through the same public helpers.
	cfg := femtographConfig(threads)
	var err error
	var dur time.Duration
	var supersteps int
	var peakQ uint64
	switch app {
	case "pagerank":
		_, rep, e := femtographPageRank(g, cfg, rounds)
		dur, supersteps, peakQ, err = rep.Duration, rep.Supersteps, rep.PeakQueuedMessages, e
	case "hashmin":
		_, rep, e := femtographHashmin(g, cfg)
		dur, supersteps, peakQ, err = rep.Duration, rep.Supersteps, rep.PeakQueuedMessages, e
	case "sssp":
		_, rep, e := femtographSSSP(g, cfg, source)
		dur, supersteps, peakQ, err = rep.Duration, rep.Supersteps, rep.PeakQueuedMessages, e
	default:
		return fmt.Errorf("femtograph supports pagerank | hashmin | sssp, not %q", app)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "femtograph-style: %v, %d supersteps, peak queued messages %d\n", dur.Round(time.Microsecond), supersteps, peakQ)
	return nil
}

func countReached(dist []uint32) int {
	n := 0
	for _, d := range dist {
		if d != algorithms.Infinity {
			n++
		}
	}
	return n
}

// sharedCollector is the process-wide metrics collector: the -telemetry
// server and the engine observers must share one instance so /metrics
// reflects the run in progress.
var sharedCollector = telemetry.NewCollector()

func telemetryCollector() *telemetry.Collector { return sharedCollector }

// openTraceSink resolves the -trace destination: a file path, or '-'
// for the run's own output stream.
func openTraceSink(path string, out io.Writer) (*telemetry.TraceWriter, func(), error) {
	if path == "-" {
		tw := telemetry.NewTraceWriter(out)
		return tw, func() { _ = tw.Flush() }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	tw := telemetry.NewTraceWriter(f)
	return tw, func() {
		_ = tw.Flush()
		_ = f.Close()
	}, nil
}
