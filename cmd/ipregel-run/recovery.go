package main

import (
	"context"
	"fmt"
	"io"

	"ipregel/internal/algorithms"
	"ipregel/internal/chaos"
	"ipregel/internal/core"
	"ipregel/internal/graph"
	"ipregel/internal/pregelplus"
)

// recoveryFlags groups the crash-recovery CLI knobs: where checkpoints
// go, how often they are taken, how many the sink retains, how many run
// attempts the supervisor gets, and an optional chaos fault spec to
// exercise the recovery path (see internal/chaos.FromSpec for the
// grammar, e.g. "seed=7,panic@3,sink@5").
type recoveryFlags struct {
	dir      string
	every    int
	keep     int
	attempts int
	chaos    string
}

// runRecoverable executes one app under core.RunWithRecovery: every
// barrier multiple of -checkpoint-every is persisted atomically to
// -checkpoint-dir, and a failed attempt (compute panic, cancellation,
// sink error — injected or real) resumes from the newest good
// checkpoint instead of restarting at superstep 0. Only the single-node
// iPregel engine checkpoints; apps whose driver composes several runs
// (scc) or rewrites the graph (wcc) are not resumable from one engine
// checkpoint and are rejected.
func runRecoverable(out io.Writer, g *graph.Graph, cfg core.Config, rf recoveryFlags, app string, rounds int, source graph.VertexID) (core.Report, error) {
	switch app {
	case "pagerank":
		e, rep, err := recoverRun(out, g, cfg, rf, algorithms.PageRankProgram(rounds), pregelplus.Float64Codec{}, nil)
		if err == nil {
			fmt.Fprintf(out, "ranks computed for %d vertices\n", len(e.ValuesDense()))
		}
		return rep, err
	case "pagerank-converged":
		const tol = 1e-9
		setup := func(e *core.Engine[float64, float64]) error {
			return e.RegisterAggregator("delta", core.AggSum)
		}
		e, rep, err := recoverRun(out, g, cfg, rf, algorithms.PageRankConvergedProgram(tol), pregelplus.Float64Codec{}, setup)
		if err == nil {
			fmt.Fprintf(out, "converged in %d supersteps over %d vertices\n", rep.Supersteps, len(e.ValuesDense()))
		}
		return rep, err
	case "hashmin":
		e, rep, err := recoverRun(out, g, cfg, rf, algorithms.HashminProgram(), pregelplus.Uint32Codec{}, nil)
		if err == nil {
			fmt.Fprintf(out, "components: %d\n", algorithms.ComponentCount(e.ValuesDense()))
		}
		return rep, err
	case "sssp":
		e, rep, err := recoverRun(out, g, cfg, rf, algorithms.SSSPProgram(source), pregelplus.Uint32Codec{}, nil)
		if err == nil {
			dist := e.ValuesDense()
			fmt.Fprintf(out, "reached: %d of %d vertices\n", countReached(dist), len(dist))
		}
		return rep, err
	default:
		return core.Report{}, fmt.Errorf("-checkpoint-dir supports pagerank | pagerank-converged | hashmin | sssp, not %q", app)
	}
}

// recoverRun is the app-generic recovery harness: build the FileSink,
// optionally thread a chaos injector through the program, observers and
// sink, then hand everything to the supervisor. Each retry is narrated
// to out and counted in the shared telemetry collector.
func recoverRun[T any](
	out io.Writer,
	g *graph.Graph,
	cfg core.Config,
	rf recoveryFlags,
	prog core.Program[T, T],
	codec core.Codec[T],
	setup func(*core.Engine[T, T]) error,
) (*core.Engine[T, T], core.Report, error) {
	sink, err := core.NewFileSink(rf.dir, rf.keep)
	if err != nil {
		return nil, core.Report{}, err
	}
	// Release the directory claim when this invocation is done so a later
	// run in the same process (tests, a driving harness) can resume from
	// the same -checkpoint-dir.
	defer sink.Close()
	sinkFn := sink.Sink
	var inj *chaos.Injector
	if rf.chaos != "" {
		inj, err = chaos.FromSpec(rf.chaos)
		if err != nil {
			return nil, core.Report{}, err
		}
		prog = chaos.WrapProgram(inj, prog)
		cfg.Observers = append(cfg.Observers, inj.Observer())
		sinkFn = inj.WrapSink(sinkFn)
	}
	cp := core.Checkpointer[T, T]{Every: rf.every, Sink: sinkFn, VCodec: codec, MCodec: codec}
	opts := core.RecoveryOptions[T, T]{
		MaxAttempts: rf.attempts,
		Setup:       setup,
		OnRetry: func(attempt int, err error) {
			telemetryCollector().RecordRecovery()
			fmt.Fprintf(out, "recovery: attempt %d failed (%v), resuming from the newest checkpoint in %s\n",
				attempt, err, sink.Dir())
		},
	}
	if inj != nil {
		opts.AttemptContext = func(parent context.Context, _ int) (context.Context, context.CancelFunc) {
			return inj.Context(parent)
		}
	}
	e, rep, err := core.RunWithRecovery(context.Background(), g, cfg, prog, cp, sink, opts)
	if inj != nil {
		for _, ev := range inj.Fired() {
			fmt.Fprintf(out, "chaos: fired %s\n", ev)
		}
	}
	return e, rep, err
}
