package main

import (
	"ipregel/internal/femtograph"
	"ipregel/internal/graph"
)

// Thin aliases keeping main.go readable.

func femtographConfig(threads int) femtograph.Config {
	return femtograph.Config{Threads: threads}
}

func femtographPageRank(g *graph.Graph, cfg femtograph.Config, rounds int) ([]float64, femtograph.Report, error) {
	return femtograph.PageRank(g, cfg, rounds)
}

func femtographHashmin(g *graph.Graph, cfg femtograph.Config) ([]uint32, femtograph.Report, error) {
	return femtograph.Hashmin(g, cfg)
}

func femtographSSSP(g *graph.Graph, cfg femtograph.Config, source graph.VertexID) ([]uint32, femtograph.Report, error) {
	return femtograph.SSSP(g, cfg, source)
}
