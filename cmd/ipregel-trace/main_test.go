package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipregel/internal/core"
	"ipregel/internal/graph"
	"ipregel/internal/telemetry"
)

// writeTrace runs a small flood to completion with a TraceWriter sink
// and returns the JSONL path plus the live report for comparison.
func writeTrace(t *testing.T) (string, core.Report) {
	t.Helper()
	var b graph.Builder
	b.BuildInEdges()
	for i := 0; i < 16; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%16))
	}
	g := b.MustBuild()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw := telemetry.NewTraceWriter(f)
	prog := core.Program[uint32, uint32]{
		Combine: func(old *uint32, new uint32) { *old += new },
		Compute: func(ctx *core.Context[uint32, uint32], v core.Vertex[uint32, uint32]) {
			if ctx.Superstep() < 3 {
				ctx.Broadcast(v, 1)
			} else {
				ctx.VoteToHalt(v)
			}
		},
	}
	_, rep, err := core.Run(g, core.Config{Observers: []core.Observer{tw}}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, rep
}

func TestReplaySummaryAndTable(t *testing.T) {
	path, rep := writeTrace(t)
	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// The replay reproduces the live run's one-line summary and table.
	if !strings.Contains(got, rep.String()) {
		t.Fatalf("summary missing:\n%s\nwant line %q", got, rep.String())
	}
	if !strings.Contains(got, rep.Table()) {
		t.Fatalf("table missing:\n%s\nwant:\n%s", got, rep.Table())
	}
	if !strings.Contains(got, "converged") {
		t.Fatalf("convergence line missing:\n%s", got)
	}
}

func TestValidateOnly(t *testing.T) {
	path, rep := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-validate", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "valid ipregel-trace/1") {
		t.Fatalf("validation verdict missing:\n%s", got)
	}
	if !strings.Contains(got, "(4 supersteps, 1 run_start, 0 abort, 1 run_end)") {
		t.Fatalf("event counts wrong for %d-step run:\n%s", rep.Supersteps, got)
	}
	if strings.Contains(got, "superstep ") {
		t.Fatalf("-validate printed the table:\n%s", got)
	}
}

func TestRejectsBadInput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}, &out); err == nil {
		t.Fatal("garbage trace accepted")
	}
}
