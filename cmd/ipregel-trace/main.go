// Command ipregel-trace validates and summarises the JSONL superstep
// traces the telemetry layer emits (ipregel-run -trace, or any
// telemetry.TraceWriter sink): it checks every line against the trace
// schema, replays the events into the run's report, and renders the
// same summary line and per-superstep table the live run printed — so a
// trace file is a complete, replayable record of a run's §7-style
// statistics.
//
// Usage:
//
//	ipregel-trace run.jsonl            # validate + summary + table
//	ipregel-trace -validate run.jsonl  # validate only (CI gate)
//	ipregel-run ... -trace - | ipregel-trace   # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ipregel/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ipregel-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ipregel-trace", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		validate = fs.Bool("validate", false, "only validate the trace against the schema; print event counts")
		table    = fs.Bool("table", true, "print the replayed per-superstep table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader
	switch name := fs.Arg(0); {
	case name == "" || name == "-":
		r = os.Stdin
	default:
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	events, err := telemetry.ReadTrace(r)
	if err != nil {
		return err
	}
	if *validate {
		counts := map[string]int{}
		for _, ev := range events {
			counts[ev.Type]++
		}
		fmt.Fprintf(out, "valid %s: %d events (%d supersteps, %d run_start, %d abort, %d run_end)\n",
			telemetry.TraceSchema, len(events),
			counts[telemetry.EventSuperstep], counts[telemetry.EventRunStart],
			counts[telemetry.EventAbort], counts[telemetry.EventRunEnd])
		return nil
	}

	rep, err := telemetry.ReplayReport(events)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep)
	if rep.Converged {
		fmt.Fprintf(out, "converged after %d supersteps in %v\n", rep.Supersteps, rep.Duration.Round(time.Microsecond))
	}
	if im := rep.LoadImbalance(); im > 0 {
		fmt.Fprintf(out, "load imbalance (max/mean worker busy): %.3f\n", im)
	}
	if *table {
		fmt.Fprint(out, rep.Table())
	}
	return nil
}
