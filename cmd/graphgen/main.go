// Command graphgen writes synthetic graphs to disk in any supported
// format, so experiments can be replayed from files exactly as the paper
// replays the KONECT/DIMACS downloads.
//
// Usage:
//
//	graphgen -spec wiki -divisor 64 -o wiki.bin
//	graphgen -spec road:600:600 -o usa.gr.gz
//	graphgen -spec rmat:18:16 -seed 7 -o big.tsv
//	graphgen -spec wroad:200:200 -o roads.gr      (weighted road grid)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ipregel/internal/gen"
	"ipregel/internal/graph"
	"ipregel/internal/graphio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		spec     = fs.String("spec", "", "graph spec (wiki | usa | twitter | friendster | rmat:s:ef | road:r:c | wroad:r:c | er:n:m | ring:n | star:n | chain:n)")
		divisor  = fs.Int("divisor", 0, "scale divisor for preset graphs (default 64)")
		seed     = fs.Int64("seed", 0, "generator seed (0 = preset default)")
		outPath  = fs.String("o", "", "output path; format chosen by extension (.gr .tsv .bin, optionally .gz, else edge list)")
		compress = fs.Bool("compress", false, "block-compress the adjacency before writing (with a .bin output this emits the IPG3 variant, loadable via mmap)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec == "" || *outPath == "" {
		return fmt.Errorf("-spec and -o are required; specs: %v", gen.Names())
	}
	start := time.Now()
	g, err := buildGraph(*spec, *divisor, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, graph.ComputeStats(*spec, g), "generated in", time.Since(start).Round(time.Millisecond))
	if *compress {
		if g, err = g.Compress(); err != nil {
			return err
		}
	}
	if err := graphio.WriteFile(*outPath, g); err != nil {
		return err
	}
	st, err := os.Stat(*outPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d bytes, %s format)\n", *outPath, st.Size(), graphio.DetectFormat(*outPath))
	return nil
}

func buildGraph(spec string, divisor int, seed int64) (*graph.Graph, error) {
	var r, c int
	if n, _ := fmt.Sscanf(spec, "wroad:%d:%d", &r, &c); n == 2 {
		if seed == 0 {
			seed = 1
		}
		return gen.WeightedRoad(gen.RoadParams{Rows: r, Cols: c, Base: 1, Seed: seed}, 1, 1000), nil
	}
	return gen.ByName(spec, gen.PresetParams{Divisor: divisor, Seed: seed})
}
