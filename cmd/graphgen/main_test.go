package main

import (
	"path/filepath"
	"strings"
	"testing"

	"ipregel/internal/graphio"
)

func TestGraphgenWritesAllFormats(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.gr", "g.tsv", "g.bin", "g.gr.gz"} {
		path := filepath.Join(dir, name)
		var sb strings.Builder
		if err := run([]string{"-spec", "ring:20", "-o", path}, &sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(sb.String(), "wrote") {
			t.Fatalf("%s: no confirmation: %s", name, sb.String())
		}
		g, err := graphio.ReadFile(path, graphio.Options{})
		if err != nil {
			t.Fatalf("%s: reload: %v", name, err)
		}
		if g.N() != 20 || g.M() != 20 {
			t.Fatalf("%s: reloaded N=%d M=%d", name, g.N(), g.M())
		}
	}
}

func TestGraphgenWeightedRoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.gr")
	var sb strings.Builder
	if err := run([]string{"-spec", "wroad:5:5", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	g, err := graphio.ReadFile(path, graphio.Options{KeepWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasWeights() {
		t.Fatal("weights lost")
	}
}

func TestGraphgenErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-spec", "ring:5"}, &sb); err == nil {
		t.Fatal("missing -o accepted")
	}
	if err := run([]string{"-spec", "bogus", "-o", filepath.Join(t.TempDir(), "x.txt")}, &sb); err == nil {
		t.Fatal("bogus spec accepted")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-spec", "ring:5", "-o", "/nonexistent-dir/x.txt"}, &sb); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
