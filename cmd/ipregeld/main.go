// Command ipregeld is the resident graph-query daemon: it loads one or
// more graphs into shared CSR storage once, then serves analytic jobs
// over HTTP/JSON against them (internal/service) — the paper's
// in-memory shared-memory model as a long-running process instead of a
// one-shot CLI.
//
// Usage:
//
//	ipregeld -graph wiki=rmat:16:8 -graph grid=road:200:200
//	ipregeld -listen 127.0.0.1:0 -graph g=ring:1024 -workers 4
//	ipregeld -graph-file usa=path/to/usa.gr -combiner spinlock
//
// Endpoints: POST /v1/jobs, GET /v1/jobs, GET /v1/jobs/{id},
// GET /v1/graphs, GET /healthz, /metrics, /debug/{vars,pprof}.
// SIGINT/SIGTERM shut down gracefully: the HTTP listener drains,
// running jobs are cancelled at their next superstep barrier, and
// their checkpoints (if enabled) stay resumable.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ipregel/internal/core"
	"ipregel/internal/gen"
	"ipregel/internal/graph"
	"ipregel/internal/graphio"
	"ipregel/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ipregeld:", err)
		os.Exit(1)
	}
}

// graphArg is one -graph/-graph-file occurrence: a name and either a
// generator spec or a file path.
type graphArg struct {
	name, src string
	file      bool
}

// parseGraphArg splits "name=src"; a bare src names itself.
func parseGraphArg(v string, file bool) (graphArg, error) {
	name, src, ok := strings.Cut(v, "=")
	if !ok {
		return graphArg{name: v, src: v, file: file}, nil
	}
	if name == "" || src == "" {
		return graphArg{}, fmt.Errorf("bad graph argument %q, want name=%s", v, map[bool]string{true: "path", false: "spec"}[file])
	}
	return graphArg{name: name, src: src, file: file}, nil
}

// run is the daemon body, factored for tests: stop (may be nil)
// triggers the same graceful shutdown a signal does.
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("ipregeld", flag.ContinueOnError)
	fs.SetOutput(out)
	var graphArgs []graphArg
	fs.Func("graph", "name=spec: load a generated graph (see internal/gen.ByName); repeatable", func(v string) error {
		a, err := parseGraphArg(v, false)
		graphArgs = append(graphArgs, a)
		return err
	})
	fs.Func("graph-file", "name=path: load a graph file (format by extension); repeatable", func(v string) error {
		a, err := parseGraphArg(v, true)
		graphArgs = append(graphArgs, a)
		return err
	})
	var (
		listen    = fs.String("listen", "127.0.0.1:8090", "HTTP listen address (use :0 for an ephemeral port)")
		backend   = fs.String("graph-backend", "flat", "adjacency storage for resident graphs: flat | compressed | mmap (mmap applies to -graph-file .bin files; others fall back to compressed)")
		divisor   = fs.Int("divisor", 0, "scale divisor for preset graphs (default 64)")
		combiner  = fs.String("combiner", "spinlock", "engine combiner: mutex | spinlock | atomic | broadcast")
		direction = fs.String("direction", "push", "default message transport per job engine: push | pull | adaptive (jobs override via params.direction; pull/adaptive load graphs with in-edges)")
		address   = fs.String("addressing", "offset", "engine addressing: direct | offset | desolate | hashmap")
		schedule  = fs.String("schedule", "static", "compute-phase schedule: static | dynamic | edge-balanced")
		combining = fs.Bool("sender-combining", false, "pre-combine repeated sends worker-locally")
		bypass    = fs.Bool("bypass", false, "selection bypass for halt-every-superstep programs (stripped per job for PageRank)")
		threads   = fs.Int("threads", 0, "default worker threads per job (0 = GOMAXPROCS)")
		shards    = fs.Int("shards", 1, "execution shards per job engine")
		workers   = fs.Int("workers", 2, "jobs executed concurrently")
		queueLen  = fs.Int("queue", 64, "job queue depth (admission control rejects beyond it)")
		cacheLen  = fs.Int("cache", 128, "LRU result-cache entries (-1 disables)")
		maxSteps  = fs.Int("max-supersteps", 100000, "per-job superstep cap and default limit")
		defDL     = fs.Duration("default-deadline", 0, "deadline for jobs that request none (0 = unlimited)")
		maxDL     = fs.Duration("max-deadline", 0, "cap on per-job deadlines (0 = uncapped)")
		ckptRoot  = fs.String("checkpoint-root", "", "checkpoint directory root; empty = a temp dir, 'off' disables crash recovery")
		ckptEvery = fs.Int("checkpoint-every", 8, "checkpoint cadence in supersteps")
		ckptKeep  = fs.Int("checkpoint-keep", 3, "checkpoints retained per job")
		attempts  = fs.Int("recover-attempts", 3, "run attempts per job before the recovery supervisor gives up")
		drain     = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for HTTP and running jobs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(graphArgs) == 0 {
		return fmt.Errorf("no graphs: pass at least one -graph name=spec or -graph-file name=path")
	}

	comb, err := core.ParseCombiner(*combiner)
	if err != nil {
		return err
	}
	addr, err := core.ParseAddressing(*address)
	if err != nil {
		return err
	}
	sched, err := core.ParseSchedule(*schedule)
	if err != nil {
		return err
	}
	dir, err := core.ParseDirection(*direction)
	if err != nil {
		return err
	}
	// In-edges are loaded whenever any job could run a pull-direction
	// superstep: the legacy all-pull combiner, a pull/adaptive template
	// default, or per-job params.direction overrides (which need the
	// template to opt in via -direction).
	needIn := comb == core.CombinerPull || dir != core.DirectionPush

	root := *ckptRoot
	switch root {
	case "off":
		root = ""
	case "":
		tmp, err := os.MkdirTemp("", "ipregeld-ckpt-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	svc := service.New(service.Options{
		Queue:        *queueLen,
		Workers:      *workers,
		CacheEntries: *cacheLen,
		Engine: core.Config{
			Combiner:        comb,
			Direction:       dir,
			Addressing:      addr,
			Schedule:        sched,
			SenderCombining: *combining,
			SelectionBypass: *bypass,
			Threads:         *threads,
			Shards:          *shards,
		},
		MaxSupersteps:   *maxSteps,
		DefaultDeadline: *defDL,
		MaxDeadline:     *maxDL,
		CheckpointRoot:  root,
		CheckpointEvery: *ckptEvery,
		CheckpointKeep:  *ckptKeep,
		RecoverAttempts: *attempts,
	})

	if *backend != "flat" && *backend != "compressed" && *backend != "mmap" {
		return fmt.Errorf("unknown graph backend %q (flat | compressed | mmap)", *backend)
	}
	// Mappings live as long as the resident graphs they serve: released
	// only after the service has fully drained at shutdown.
	var mapped []*graphio.Mapped
	defer func() {
		for _, m := range mapped {
			_ = m.Close()
		}
	}()
	for _, a := range graphArgs {
		start := time.Now()
		var g *graph.Graph
		how := ""
		if a.file && *backend == "mmap" && strings.HasSuffix(a.src, ".bin") {
			var m *graphio.Mapped
			m, err = graphio.OpenMapped(a.src, graphio.Options{BuildInEdges: needIn})
			if err != nil {
				return fmt.Errorf("graph %s: %w", a.name, err)
			}
			mapped = append(mapped, m)
			g = m.Graph()
			how = " (mapped read-only)"
		} else {
			if a.file {
				g, err = graphio.ReadFile(a.src, graphio.Options{BuildInEdges: needIn})
			} else {
				g, err = gen.ByName(a.src, gen.PresetParams{Divisor: *divisor, BuildInEdges: needIn})
			}
			if err != nil {
				return fmt.Errorf("graph %s: %w", a.name, err)
			}
			if *backend != "flat" {
				// compressed, or the mmap fallback for sources that have no
				// mappable binary file behind them
				if g, err = g.Compress(); err != nil {
					return fmt.Errorf("graph %s: %w", a.name, err)
				}
				how = " (compressed)"
			}
		}
		if err := svc.AddGraph(a.name, g, a.src); err != nil {
			return err
		}
		fmt.Fprintf(out, "ipregeld: loaded graph %s: %d vertices, %d edges in %v%s\n",
			a.name, g.N(), g.M(), time.Since(start).Round(time.Millisecond), how)
	}

	if err := svc.Start(); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	svc.Collector().Publish()
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(out, "ipregeld: serving on %s\n", ln.Addr())

	sigCtx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	select {
	case <-sigCtx.Done():
	case <-stop:
	case err := <-serveErr:
		svcCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		_ = svc.Close(svcCtx)
		return fmt.Errorf("http server: %w", err)
	}

	fmt.Fprintln(out, "ipregeld: shutting down")
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), *drain)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		_ = srv.Close()
	}
	svcCtx, cancelSvc := context.WithTimeout(context.Background(), *drain)
	defer cancelSvc()
	if err := svc.Close(svcCtx); err != nil {
		return err
	}
	fmt.Fprintln(out, "ipregeld: bye")
	return nil
}
