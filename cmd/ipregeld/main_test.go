package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseGraphArg(t *testing.T) {
	a, err := parseGraphArg("wiki=rmat:16:8", false)
	if err != nil || a.name != "wiki" || a.src != "rmat:16:8" || a.file {
		t.Fatalf("named spec: %+v, %v", a, err)
	}
	a, err = parseGraphArg("ring:64", false)
	if err != nil || a.name != "ring:64" || a.src != "ring:64" {
		t.Fatalf("bare spec names itself: %+v, %v", a, err)
	}
	a, err = parseGraphArg("usa=/data/usa.gr", true)
	if err != nil || a.name != "usa" || a.src != "/data/usa.gr" || !a.file {
		t.Fatalf("named file: %+v, %v", a, err)
	}
	if _, err := parseGraphArg("=spec", false); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := parseGraphArg("name=", false); err == nil {
		t.Fatal("empty source accepted")
	}
}

func TestRunValidation(t *testing.T) {
	for _, tc := range []struct {
		args []string
		want string
	}{
		{nil, "no graphs"},
		{[]string{"-graph", "g=nosuchspec"}, "unknown graph spec"},
		{[]string{"-graph", "g=ring:64", "-combiner", "bogus"}, "unknown combiner"},
		{[]string{"-graph", "g=ring:64", "-addressing", "bogus"}, "unknown addressing"},
		{[]string{"-graph", "g=ring:64", "-schedule", "bogus"}, "unknown schedule"},
	} {
		var buf bytes.Buffer
		err := run(tc.args, &buf, nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("args %v: err = %v, want mention of %q", tc.args, err, tc.want)
		}
	}
}

// syncBuffer lets the test read daemon output while run() writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var servingRe = regexp.MustCompile(`ipregeld: serving on (\S+)`)

// TestDaemonEndToEnd boots the daemon on an ephemeral port, exercises a
// job round trip plus a cache hit over real HTTP, then stops it via the
// test hook (the same path a signal takes) and requires a clean exit.
func TestDaemonEndToEnd(t *testing.T) {
	var out syncBuffer
	stop := make(chan struct{})
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-listen", "127.0.0.1:0",
			"-graph", "g=ring:128",
			"-checkpoint-root", "off",
		}, &out, stop)
	}()

	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if m := servingRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-runErr:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"graph":"g","program":"sssp","params":{"source":0,"vertices":[64]}}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Cached bool   `json:"cached"`
		Result *struct {
			Reached int `json:"reached"`
		} `json:"result"`
	}
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 {
		t.Fatalf("submit: %d %+v", resp.StatusCode, view)
	}

	for view.State != "done" {
		if view.State == "failed" || view.State == "cancelled" {
			t.Fatalf("job reached %s", view.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, view.ID))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(b, &view); err != nil {
			t.Fatalf("poll decode: %v (%s)", err, b)
		}
	}
	if view.Result == nil || view.Result.Reached != 128 {
		t.Fatalf("result: %+v, want all 128 ring vertices reached", view.Result)
	}

	// Identical resubmission is a cache hit (200, already done).
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var hit struct {
		State  string `json:"state"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || !hit.Cached || hit.State != "done" {
		t.Fatalf("resubmission: %d %+v, want a cache hit", resp.StatusCode, hit)
	}

	close(stop)
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("shutdown: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never exited:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "ipregeld: bye") {
		t.Fatalf("no clean shutdown marker:\n%s", out.String())
	}
}
