// Command graphinfo prints Table-1/Table-2-style statistics for a graph
// file or generator spec: |V|, |E|, degree summary, density and degree
// distribution — the properties the paper's performance analysis keys on
// (§7.2: ratio of active vertices and graph density).
//
// Usage:
//
//	graphinfo -graph usa
//	graphinfo -file downloads/USA-road-d.USA.gr.gz -hist
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ipregel/internal/algorithms"
	"ipregel/internal/core"
	"ipregel/internal/gen"
	"ipregel/internal/graph"
	"ipregel/internal/graphio"
	"ipregel/internal/memmodel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphinfo:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphinfo", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		spec    = fs.String("graph", "", "generator spec (see graphgen)")
		file    = fs.String("file", "", "graph file to inspect")
		divisor = fs.Int("divisor", 0, "scale divisor for presets (default 64)")
		hist    = fs.Bool("hist", false, "print the out-degree histogram (power-of-two buckets)")
		cut     = fs.Int("cut", 0, "print the edge-cut fraction for hash vs block partitioning over N workers")
		diam    = fs.Int("diameter", 0, "estimate the diameter from N sampled sources (drives superstep counts, §7.2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *graph.Graph
	var err error
	name := *spec
	switch {
	case *file != "":
		name = *file
		g, err = graphio.ReadFile(*file, graphio.Options{})
	case *spec != "":
		g, err = gen.ByName(*spec, gen.PresetParams{Divisor: *divisor})
	default:
		return fmt.Errorf("need -graph or -file")
	}
	if err != nil {
		return err
	}
	s := graph.ComputeStats(name, g)
	fmt.Fprintln(out, s)
	direct := "needs offset or desolate mapping (§5)"
	if g.Base() == 0 {
		direct = "possible"
	}
	fmt.Fprintf(out, "base identifier: %d (direct mapping %s)\n", g.Base(), direct)
	fmt.Fprintf(out, "binary size: %s (paper §7.4.2 accounting)\n", memmodel.GB(graphio.BinarySizeBytes(g.N(), g.M())))
	fmt.Fprintf(out, "in-memory CSR: %s; degree inequality (Gini): %.3f\n", memmodel.GB(g.MemoryBytes()), graph.GiniOutDegree(g))
	fmt.Fprintf(out, "isolated vertices: %d\n", s.Isolated)
	// Degree skew: the quantities the hub-splitting scheduler keys on
	// (core.Config.HubSplit defaults its cut to the p99.9).
	p99 := graph.OutDegreeQuantile(g, 0.99)
	p999 := graph.OutDegreeQuantile(g, 0.999)
	hubs := 0
	for i := 0; i < g.N(); i++ {
		if g.OutDegree(i) > p999 {
			hubs++
		}
	}
	fmt.Fprintf(out, "degree skew: max %d, p99 %d, p99.9 %d; %d hub vertices above the p99.9 split cut\n",
		s.MaxOutDegree, p99, p999, hubs)
	if *hist {
		fmt.Fprintln(out, "out-degree histogram (bucket k = degrees in [2^(k-1), 2^k)):")
		for k, c := range graph.DegreeHistogram(g) {
			fmt.Fprintf(out, "  %2d: %d\n", k, c)
		}
	}
	if *cut > 1 {
		hash, block := edgeCuts(g, *cut)
		fmt.Fprintf(out, "edge cut over %d workers: hash %.1f%%, block %.1f%% (cut edges cross the wire in a distributed deployment)\n",
			*cut, hash*100, block*100)
	}
	if *diam > 0 {
		d, err := algorithms.ApproxDiameter(g, core.Config{Combiner: core.CombinerSpin, SelectionBypass: true}, *diam)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "diameter (lower bound, %d samples): %d — expect ≥ this many SSSP supersteps\n", *diam, d)
	}
	return nil
}

// edgeCuts returns the fraction of edges whose endpoints land on
// different workers under modulo-hash and contiguous-block partitioning.
func edgeCuts(g *graph.Graph, workers int) (hash, block float64) {
	n := g.N()
	if n == 0 || g.M() == 0 {
		return 0, 0
	}
	base := uint64(g.Base())
	blockOf := func(i uint64) int {
		w := int(i * uint64(workers) / uint64(n))
		if w >= workers {
			w = workers - 1
		}
		return w
	}
	var cutHash, cutBlock uint64
	g.Edges(func(s, d graph.VertexID) bool {
		us, ud := uint64(s), uint64(d)
		if (us+base)%uint64(workers) != (ud+base)%uint64(workers) {
			cutHash++
		}
		if blockOf(us) != blockOf(ud) {
			cutBlock++
		}
		return true
	})
	m := float64(g.M())
	return float64(cutHash) / m, float64(cutBlock) / m
}
