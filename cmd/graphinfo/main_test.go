package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGraphinfoSpec(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-graph", "rmat:8:4", "-hist"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"|V|=256", "binary size", "Gini", "histogram"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestGraphinfoFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-file", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "|V|=3") {
		t.Fatalf("unexpected output:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "direct mapping possible") {
		t.Fatalf("base-0 graph should allow direct mapping:\n%s", sb.String())
	}
}

func TestGraphinfoEdgeCut(t *testing.T) {
	var sb strings.Builder
	// A grid with spatially ordered identifiers: block partitioning cuts
	// far fewer edges than hash.
	if err := run([]string{"-graph", "road:20:20", "-cut", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "edge cut over 8 workers") {
		t.Fatalf("cut line missing:\n%s", out)
	}
	var hash, block float64
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "edge cut") {
			if _, err := fmt.Sscanf(line, "edge cut over 8 workers: hash %f%%, block %f%%", &hash, &block); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
	}
	if block >= hash/2 {
		t.Fatalf("block cut %.1f%% should be far below hash cut %.1f%% on a grid", block, hash)
	}
}

func TestGraphinfoDiameter(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-graph", "ring:25", "-diameter", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "diameter (lower bound, 1 samples): 24") {
		t.Fatalf("diameter output:\n%s", sb.String())
	}
}

func TestGraphinfoErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("no input accepted")
	}
	if err := run([]string{"-file", filepath.Join(t.TempDir(), "missing.txt")}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"-graph", "bogus"}, &sb); err == nil {
		t.Fatal("bogus spec accepted")
	}
}
