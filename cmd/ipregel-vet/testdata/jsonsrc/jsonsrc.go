// Package jsonsrc is the golden-test input for ipregel-vet's -json
// output: one live atomicfield finding and one suppressed one, so the
// golden file pins the schema of both shapes (see main_test.go).
package jsonsrc

import "sync/atomic"

type counter struct {
	n uint64
}

func (c *counter) inc() { atomic.AddUint64(&c.n, 1) }

func read(c *counter) uint64 {
	return c.n
}

func audited(c *counter) uint64 {
	//ipregel:ignore atomicfield read-only snapshot taken after shutdown
	return c.n
}
