package main

import (
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strings"
	"testing"

	"ipregel/internal/analysis"
)

// TestHelpListsExactlyAll pins the help text to the analyzer registry:
// every analyzer in analysis.All() appears as a `name: summary` entry,
// in registry order, and nothing else parses as one. Adding an analyzer
// without registering it (or retiring one without delisting it) fails
// here, so the CLI surface cannot drift from the suite.
func TestHelpListsExactlyAll(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"help"}, &out, &errb); code != 0 {
		t.Fatalf("help exited %d\nstderr: %s", code, errb.String())
	}
	nameLine := regexp.MustCompile(`^([a-z][a-z0-9]*): `)
	var listed []string
	for _, line := range strings.Split(out.String(), "\n") {
		if m := nameLine.FindStringSubmatch(line); m != nil {
			listed = append(listed, m[1])
		}
	}
	var want []string
	for _, a := range analysis.All() {
		want = append(want, a.Name)
	}
	if !slices.Equal(listed, want) {
		t.Errorf("help lists %v\nanalysis.All() has %v", listed, want)
	}
}

// TestJSONGolden runs the driver in -json mode over a fixture with one
// live and one suppressed finding and compares byte-for-byte against
// testdata/jsonsrc.golden. File paths in the output are module-root
// relative, so the golden holds regardless of where the test runs.
// Regenerate after an intentional schema change with:
//
//	go run ./cmd/ipregel-vet -json cmd/ipregel-vet/testdata/jsonsrc \
//	  > cmd/ipregel-vet/testdata/jsonsrc.golden
func TestJSONGolden(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", filepath.Join("testdata", "jsonsrc")}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (one unsuppressed finding)\nstderr: %s", code, errb.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "jsonsrc.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Errorf("-json output differs from golden\ngot:\n%s\nwant:\n%s", out.String(), golden)
	}
}

// TestJSONIncludesSuppressed guards the auditing contract: the -json
// stream carries suppressed findings (flagged true), while the text
// mode and the exit status see only live ones.
func TestJSONIncludesSuppressed(t *testing.T) {
	var out, errb strings.Builder
	run([]string{"-json", filepath.Join("testdata", "jsonsrc")}, &out, &errb)
	if n := strings.Count(out.String(), `"suppressed": true`); n != 1 {
		t.Errorf("got %d suppressed findings in JSON, want 1\noutput:\n%s", n, out.String())
	}

	var text strings.Builder
	run([]string{filepath.Join("testdata", "jsonsrc")}, &text, &errb)
	if got := strings.Count(text.String(), "\n"); got != 1 {
		t.Errorf("text mode printed %d lines, want 1 (suppressed finding must be omitted)\noutput:\n%s", got, text.String())
	}
}
