// Command ipregel-vet is the module's static-analysis driver: it runs the
// internal/analysis suite over packages of this module, printing
// go-vet-style diagnostics and exiting non-zero when any survive
// suppression. Run `ipregel-vet help` for the analyzer roster — it is
// generated from analysis.All(), so the list never goes stale.
//
// Usage:
//
//	ipregel-vet [-only name[,name]] [-json] [package-dir|dir/...]...
//	ipregel-vet help
//
// With no arguments it checks ./... from the current directory. Findings
// can be silenced in source with
//
//	//ipregel:ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory.
//
// With -json the driver emits a JSON array instead of text. Each element
// has the shape
//
//	{"analyzer": "...", "pos": {"file": "...", "line": N, "col": N},
//	 "message": "...", "suppressed": false}
//
// where file is module-root-relative with forward slashes (stable across
// machines). Suppressed findings are included with "suppressed": true so
// tooling can audit the ignore inventory; only unsuppressed findings
// affect the exit status.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"ipregel/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("ipregel-vet", flag.ContinueOnError)
	fs.SetOutput(errw)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array (includes suppressed findings)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 1 && patterns[0] == "help" {
		printHelp(out)
		return 0
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(errw, "ipregel-vet:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errw, "ipregel-vet:", err)
		return 2
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(errw, "ipregel-vet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(errw, "ipregel-vet:", err)
		return 2
	}

	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(errw, "ipregel-vet:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(errw, "ipregel-vet: no packages match", strings.Join(patterns, " "))
		return 2
	}

	var all []analysis.Diagnostic
	for _, dir := range dirs {
		targets, err := loader.LoadDir(dir, "")
		if err != nil {
			fmt.Fprintf(errw, "ipregel-vet: %s: %v\n", dir, err)
			return 2
		}
		for _, target := range targets {
			diags, err := analysis.RunAll(analyzers, loader, target)
			if err != nil {
				fmt.Fprintf(errw, "ipregel-vet: %v\n", err)
				return 2
			}
			all = append(all, diags...)
		}
	}

	found := 0
	for _, d := range all {
		if !d.Suppressed {
			found++
		}
	}

	if *jsonOut {
		if err := writeJSON(out, all, root); err != nil {
			fmt.Fprintln(errw, "ipregel-vet:", err)
			return 2
		}
	} else {
		for _, d := range all {
			if d.Suppressed {
				continue
			}
			fmt.Fprintf(out, "%s\n", diagString(d, cwd))
		}
	}
	if found > 0 {
		return 1
	}
	return 0
}

// jsonDiag is the stable wire shape of one finding. Fields are ordered
// and named for tooling: changing them breaks the golden test and the
// GitHub Actions problem matcher in .github/problem-matchers/.
type jsonDiag struct {
	Analyzer string  `json:"analyzer"`
	Pos      jsonPos `json:"pos"`
	Message  string  `json:"message"`
	// Suppressed marks findings silenced by an //ipregel:ignore
	// directive; they are reported for auditability but do not affect
	// the exit status.
	Suppressed bool `json:"suppressed"`
}

type jsonPos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// writeJSON renders diagnostics as an indented JSON array with file
// paths relative to the module root and forward slashes, so output is
// byte-stable across invocation directories and operating systems. An
// empty result is the literal `[]`, never `null`.
func writeJSON(out io.Writer, diags []analysis.Diagnostic, root string) error {
	jds := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		jds = append(jds, jsonDiag{
			Analyzer:   d.Analyzer,
			Pos:        jsonPos{File: file, Line: d.Pos.Line, Col: d.Pos.Column},
			Message:    d.Message,
			Suppressed: d.Suppressed,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "\t")
	return enc.Encode(jds)
}

// diagString renders a diagnostic with its file path relative to the
// invocation directory when possible, matching go vet's output shape.
func diagString(d analysis.Diagnostic, cwd string) string {
	pos := d.Pos
	if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = rel
	}
	return fmt.Sprintf("%s: %s: %s", pos, d.Analyzer, d.Message)
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, analyzerNames(all))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

func analyzerNames(all []*analysis.Analyzer) string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

func printHelp(out io.Writer) {
	fmt.Fprintln(out, "ipregel-vet checks iPregel framework contracts the compiler cannot see.")
	fmt.Fprintln(out)
	// One entry per analyzer, taken from the live registry so the help
	// text cannot drift from the suite. Continuation lines are indented:
	// only entry headers sit at column 0, which main_test.go relies on.
	for _, a := range analysis.All() {
		summary, body, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(out, "%s: %s\n", a.Name, summary)
		for _, line := range strings.Split(body, "\n") {
			if line == "" {
				fmt.Fprintln(out)
			} else {
				fmt.Fprintf(out, "  %s\n", line)
			}
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintln(out, "Suppress a finding with `//ipregel:ignore <analyzer> <reason>` on the")
	fmt.Fprintln(out, "flagged line or the line above. The reason is mandatory.")
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// expandPatterns resolves package patterns to package directories: a
// trailing /... walks the tree (skipping testdata, vendor, and hidden
// directories), anything else names one directory.
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		base, recursive := strings.CutSuffix(p, "/...")
		if base == "" || base == "." {
			base = "."
		}
		if !recursive {
			if hasGoFiles(base) {
				add(base)
			} else {
				return nil, fmt.Errorf("no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
