module ipregel

go 1.22
