#!/usr/bin/env sh
# End-to-end smoke test of the resident query daemon (`make
# ipregeld-smoke`, CI job `ipregeld-smoke`): boot ipregeld on an
# ephemeral port with one resident graph, submit a PageRank and an SSSP
# job concurrently, require both to finish with sane results, require a
# resubmitted identical job to be served from the LRU cache without
# re-running, check the per-job telemetry mount, and demand a clean
# SIGTERM shutdown.
set -eu

TMP="$(mktemp -d)"
DAEMON_PID=""
trap 'test -n "$DAEMON_PID" && kill "$DAEMON_PID" 2>/dev/null; rm -rf "$TMP"' EXIT

fail() {
    echo "FAIL: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$TMP/daemon.log" >&2 2>/dev/null || true
    exit 1
}

go build -o "$TMP/" ./cmd/ipregeld

"$TMP/ipregeld" -listen 127.0.0.1:0 -graph g=rmat:12:8 -workers 2 \
    -checkpoint-root "$TMP/ckpt" >"$TMP/daemon.log" 2>&1 &
DAEMON_PID=$!

# Wait for the daemon to announce its resolved address.
ADDR=""
for _ in $(seq 1 200); do
    ADDR="$(sed -n 's/^ipregeld: serving on \(.*\)$/\1/p' "$TMP/daemon.log" 2>/dev/null | head -n1)"
    test -n "$ADDR" && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited during boot"
    sleep 0.1
done
test -n "$ADDR" || fail "daemon never announced its address"
BASE="http://$ADDR"

curl -sf "$BASE/healthz" | grep -q '"status": "ok"' || fail "healthz not ok"
curl -sf "$BASE/v1/graphs" | grep -q '"name": "g"' || fail "graph not listed"

# Submit two jobs back to back so they run concurrently on the two
# workers.
PR_BODY='{"graph":"g","program":"pagerank","params":{"rounds":20,"top":3}}'
curl -sf -X POST -d "$PR_BODY" "$BASE/v1/jobs" -o "$TMP/pr.json" || fail "pagerank submit"
curl -sf -X POST -d '{"graph":"g","program":"sssp","params":{"source":1}}' \
    "$BASE/v1/jobs" -o "$TMP/ss.json" || fail "sssp submit"

job_id() { sed -n 's/.*"id": "\(j[0-9]*\)".*/\1/p' "$1" | head -n1; }
PR_ID="$(job_id "$TMP/pr.json")"
SS_ID="$(job_id "$TMP/ss.json")"
test -n "$PR_ID" || fail "no pagerank job id in $(cat "$TMP/pr.json")"
test -n "$SS_ID" || fail "no sssp job id in $(cat "$TMP/ss.json")"

# Poll both to a terminal state.
wait_done() {
    id="$1"
    for _ in $(seq 1 300); do
        curl -sf "$BASE/v1/jobs/$id" -o "$TMP/$id.json" || fail "poll $id"
        if grep -q '"state": "done"' "$TMP/$id.json"; then
            return 0
        fi
        if grep -Eq '"state": "(failed|cancelled)"' "$TMP/$id.json"; then
            fail "job $id did not finish: $(cat "$TMP/$id.json")"
        fi
        sleep 0.1
    done
    fail "job $id never finished"
}
wait_done "$PR_ID"
wait_done "$SS_ID"

grep -q '"rank_sum"' "$TMP/$PR_ID.json" || fail "pagerank result missing rank_sum"
grep -q '"top"' "$TMP/$PR_ID.json" || fail "pagerank result missing top vertices"
grep -Eq '"reached": [1-9]' "$TMP/$SS_ID.json" || fail "sssp reached no vertices"

# Per-job telemetry: the shared collector must have counted both runs.
curl -sf "$BASE/metrics" -o "$TMP/metrics.txt" || fail "metrics scrape"
grep -q '^ipregel_runs_total 2$' "$TMP/metrics.txt" || fail "/metrics runs_total != 2"
grep -q '^ipregel_runs_converged_total 2$' "$TMP/metrics.txt" || fail "/metrics converged_total != 2"

# An identical resubmission must be served from the result cache: HTTP
# 200 (not 202), born done, flagged cached.
HITCODE="$(curl -s -o "$TMP/hit.json" -w '%{http_code}' -X POST -d "$PR_BODY" "$BASE/v1/jobs")"
test "$HITCODE" = "200" || fail "cache resubmission returned $HITCODE, want 200"
grep -q '"cached": true' "$TMP/hit.json" || fail "resubmission not flagged cached"
grep -q '"state": "done"' "$TMP/hit.json" || fail "cache hit not born done"
curl -sf "$BASE/metrics" | grep -q '^ipregel_runs_total 2$' \
    || fail "cache hit re-ran the job (runs_total moved)"

# Clean SIGTERM shutdown.
kill "$DAEMON_PID"
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
    fail "daemon ignored SIGTERM"
fi
wait "$DAEMON_PID" 2>/dev/null || fail "daemon exited non-zero on SIGTERM"
DAEMON_PID=""
grep -q '^ipregeld: bye$' "$TMP/daemon.log" || fail "no clean shutdown marker"

echo "ipregeld smoke: OK"
grep '"value"' "$TMP/$PR_ID.json" | head -n 3
