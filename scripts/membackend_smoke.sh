#!/usr/bin/env sh
# End-to-end smoke test of the memory-efficiency tier (`make
# membackend-smoke`, CI job `membackend-smoke`): generate the same graph
# as a flat IPG1 binary and a block-compressed IPG3 binary, require the
# IPG3 file to be smaller, run SSSP from every backend (-graph-backend
# flat | compressed | mmap) and require identical results and superstep
# statistics, check the mem-backend experiment reports a strictly
# smaller compressed heap, and boot ipregeld with the IPG3 file mapped
# read-only.
set -eu

TMP="$(mktemp -d)"
DAEMON_PID=""
trap 'test -n "$DAEMON_PID" && kill "$DAEMON_PID" 2>/dev/null; rm -rf "$TMP"' EXIT

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

go build -o "$TMP/" ./cmd/graphgen ./cmd/ipregel-run ./cmd/ipregel-bench ./cmd/ipregeld

# 1. On-disk sizes: IPG3 must undercut IPG1 on the same graph.
"$TMP/graphgen" -spec road:60:60 -o "$TMP/flat.bin" >/dev/null
"$TMP/graphgen" -spec road:60:60 -compress -o "$TMP/comp.bin" >/dev/null
FLAT_SIZE=$(wc -c <"$TMP/flat.bin")
COMP_SIZE=$(wc -c <"$TMP/comp.bin")
[ "$COMP_SIZE" -lt "$FLAT_SIZE" ] || fail "IPG3 file ($COMP_SIZE B) not smaller than IPG1 ($FLAT_SIZE B)"
echo "ok: IPG3 $COMP_SIZE B < IPG1 $FLAT_SIZE B"

# 2. Backend parity through the CLI: same reached count and superstep
# statistics from the flat file, the compressed re-encode, and the
# mapped IPG3 file.
run_sssp() {
    "$TMP/ipregel-run" -app sssp -graph-file "$1" -graph-backend "$2" \
        -combiner atomic -source 1 | grep -E '^(reached|[a-z]+ +supersteps=)' \
        | sed 's/time=[^ ]*//'
}
REF="$(run_sssp "$TMP/flat.bin" flat)"
for backend in compressed mmap; do
    case $backend in
        mmap) GOT="$(run_sssp "$TMP/comp.bin" mmap)" ;;
        *) GOT="$(run_sssp "$TMP/flat.bin" $backend)" ;;
    esac
    [ "$GOT" = "$REF" ] || fail "backend $backend diverged from flat:
$GOT
vs
$REF"
    echo "ok: $backend matches flat"
done

# Reading an IPG3 file through the streaming reader (flat backend) must
# also work: the format round-trips without OpenMapped.
GOT="$(run_sssp "$TMP/comp.bin" flat)"
[ "$GOT" = "$REF" ] || fail "IPG3 via streaming reader diverged from flat"
echo "ok: IPG3 streaming read matches flat"

# 3. Footprint ordering from the bench experiment's JSON.
"$TMP/ipregel-bench" -exp mem-backend -divisor 512 >"$TMP/membackend.out"
HEAPS="$(sed -n 's/^ *"heap_bytes": \([0-9]*\),$/\1/p' "$TMP/membackend.out")"
set -- $HEAPS
[ "$#" -eq 3 ] || fail "expected 3 heap_bytes rows in mem-backend output, got $#"
[ "$2" -lt "$1" ] || fail "compressed heap ($2 B) not below flat ($1 B)"
[ "$3" -lt "$2" ] || fail "mmap heap ($3 B) not below compressed ($2 B)"
echo "ok: heap bytes flat=$1 > compressed=$2 > mmap=$3"

# 4. The daemon serves a mapped graph.
"$TMP/ipregeld" -listen 127.0.0.1:0 -graph-file g="$TMP/comp.bin" \
    -graph-backend mmap -checkpoint-root off >"$TMP/daemon.log" 2>&1 &
DAEMON_PID=$!
ADDR=""
for _ in $(seq 1 200); do
    ADDR="$(sed -n 's/^ipregeld: serving on \(.*\)$/\1/p' "$TMP/daemon.log" 2>/dev/null | head -n1)"
    test -n "$ADDR" && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$TMP/daemon.log" >&2; fail "daemon exited during boot"; }
    sleep 0.1
done
test -n "$ADDR" || fail "daemon never announced its address"
grep -q 'mapped read-only' "$TMP/daemon.log" || fail "daemon did not map the graph"
curl -sf "http://$ADDR/healthz" >/dev/null || fail "daemon healthz failed with mapped graph"
kill "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
echo "ok: ipregeld served a mapped IPG3 graph"

echo "PASS: membackend smoke"
