#!/usr/bin/env sh
# End-to-end smoke test of the live telemetry layer (`make
# telemetry-smoke`, CI job `telemetry-smoke`): run a small PageRank with
# -telemetry and -trace on, assert /metrics, expvar and pprof serve real
# data during/after the run, and validate + replay the emitted JSONL
# through ipregel-trace.
set -eu

PORT="${PORT:-18080}"
TMP="$(mktemp -d)"
RUN_PID=""
trap 'test -n "$RUN_PID" && kill "$RUN_PID" 2>/dev/null; rm -rf "$TMP"' EXIT

go build -o "$TMP/" ./cmd/ipregel-run ./cmd/ipregel-trace

# -telemetry-hold keeps the endpoint up after the (fast) run so the
# scrape below is not racing run teardown.
"$TMP/ipregel-run" -app pagerank -graph rmat:12:8 -rounds 10 \
    -telemetry "127.0.0.1:$PORT" -telemetry-hold 120s \
    -trace "$TMP/run.jsonl" >"$TMP/run.log" 2>&1 &
RUN_PID=$!

# Wait until the endpoint is up and the run has finished (the trace's
# run_end event is flushed by the writer at run end).
ok=""
for _ in $(seq 1 200); do
    if curl -sf "http://127.0.0.1:$PORT/metrics" -o /dev/null 2>/dev/null \
        && grep -q '"type":"run_end"' "$TMP/run.jsonl" 2>/dev/null; then
        ok=1
        break
    fi
    if ! kill -0 "$RUN_PID" 2>/dev/null; then
        echo "FAIL: ipregel-run exited before the scrape:" >&2
        cat "$TMP/run.log" >&2
        exit 1
    fi
    sleep 0.3
done
if [ -z "$ok" ]; then
    echo "FAIL: telemetry endpoint or trace never became ready" >&2
    cat "$TMP/run.log" >&2
    exit 1
fi

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

curl -sf "http://127.0.0.1:$PORT/metrics" -o "$TMP/metrics.txt"
grep -q '^ipregel_runs_total 1$' "$TMP/metrics.txt" || fail "/metrics missing ipregel_runs_total 1"
grep -q '^ipregel_runs_converged_total 1$' "$TMP/metrics.txt" || fail "/metrics missing converged run"
grep -q '^ipregel_supersteps_total ' "$TMP/metrics.txt" || fail "/metrics missing supersteps counter"
grep -q '^ipregel_messages_total [1-9]' "$TMP/metrics.txt" || fail "/metrics shows no messages"

curl -sf "http://127.0.0.1:$PORT/debug/vars" | grep -q 'ipregel_messages_total' \
    || fail "expvar /debug/vars missing the ipregel snapshot"

curl -sf -o "$TMP/heap.pb.gz" "http://127.0.0.1:$PORT/debug/pprof/heap"
test -s "$TMP/heap.pb.gz" || fail "/debug/pprof/heap returned an empty profile"

"$TMP/ipregel-trace" -validate "$TMP/run.jsonl" || fail "trace failed schema validation"
"$TMP/ipregel-trace" "$TMP/run.jsonl" >"$TMP/replay.txt" || fail "trace replay failed"
grep -q '^superstep ' "$TMP/replay.txt" || fail "replay printed no superstep table"

kill "$RUN_PID"
wait "$RUN_PID" 2>/dev/null || true
RUN_PID=""

echo "telemetry smoke: OK"
sed -n '1,4p' "$TMP/replay.txt"
