#!/usr/bin/env sh
# End-to-end smoke test of the crash-recovery layer (`make chaos`, CI
# job `chaos`): kill-and-auto-resume must work through both entry
# points — the examples/faulttolerance demo (panic + corrupted
# checkpoint, supervisor falls back past the bad file) and the
# ipregel-run CLI under a -chaos fault spec. Both must recover at least
# once and finish with a verified / plausible result.
set -eu

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== examples/faulttolerance: panic + corrupt checkpoint, auto-resume =="
go run ./examples/faulttolerance -rows 80 -cols 80 -every 10 | tee "$TMP/example.log"
grep -q "recoveries: 2" "$TMP/example.log" || {
    echo "FAIL: example did not report 2 recoveries" >&2
    exit 1
}
grep -q "identical to the uninterrupted run" "$TMP/example.log" || {
    echo "FAIL: example did not verify the recovered result" >&2
    exit 1
}

echo "== ipregel-run: -chaos spec killed mid-run, supervisor resumes =="
go run ./cmd/ipregel-run -app sssp -graph road:60:60 -combiner spinlock -bypass -source 1 \
    -checkpoint-dir "$TMP/ckpt" -checkpoint-every 4 \
    -chaos 'seed=7,panic@9,cancel@21' -recover-attempts 4 | tee "$TMP/cli.log"
grep -q "recovery: attempt 1 failed" "$TMP/cli.log" || {
    echo "FAIL: CLI run did not report a recovery" >&2
    exit 1
}
grep -q "reached: 3600 of 3600" "$TMP/cli.log" || {
    echo "FAIL: CLI run did not reach every vertex after recovery" >&2
    exit 1
}
grep -q "recoveries=2" "$TMP/cli.log" || {
    echo "FAIL: CLI report is missing recoveries=2" >&2
    exit 1
}

echo "== ipregel-run: sharded engine (-shards 4) killed mid-run, resumes =="
# Sharded checkpoints carry per-shard sections plus a topology header;
# LatestGood must verify them and the supervisor must resume the 4-shard
# run exactly as it does the flat one. The -overlap -steal leg repeats
# the kill with per-shard drainer goroutines and dynamic task queues
# live: the barrier snapshot must quiesce in-flight early batches before
# writing, or the resumed run lands on wrong distances.
go run ./cmd/ipregel-run -app sssp -graph road:60:60 -combiner atomic -source 1 \
    -shards 4 -checkpoint-dir "$TMP/ckpt-sharded" -checkpoint-every 4 \
    -chaos 'seed=7,panic@9' -recover-attempts 4 | tee "$TMP/sharded.log"
grep -q "recovery: attempt 1 failed" "$TMP/sharded.log" || {
    echo "FAIL: sharded CLI run did not report a recovery" >&2
    exit 1
}
grep -q "reached: 3600 of 3600" "$TMP/sharded.log" || {
    echo "FAIL: sharded CLI run did not reach every vertex after recovery" >&2
    exit 1
}
go run ./cmd/ipregel-run -app sssp -graph road:60:60 -combiner atomic -source 1 \
    -shards 4 -overlap -steal -checkpoint-dir "$TMP/ckpt-overlap" -checkpoint-every 4 \
    -chaos 'seed=7,panic@9' -recover-attempts 4 | tee "$TMP/overlap.log"
grep -q "recovery: attempt 1 failed" "$TMP/overlap.log" || {
    echo "FAIL: overlap CLI run did not report a recovery" >&2
    exit 1
}
grep -q "reached: 3600 of 3600" "$TMP/overlap.log" || {
    echo "FAIL: overlap CLI run did not reach every vertex after recovery" >&2
    exit 1
}

echo "== ipregel-run: checkpoints survive across invocations =="
# One attempt only: the injected panic exhausts the supervisor, leaving
# checkpoints behind; the second invocation resumes from them.
if go run ./cmd/ipregel-run -app hashmin -graph road:60:60 -combiner atomic \
    -checkpoint-dir "$TMP/ckpt2" -checkpoint-every 4 \
    -chaos 'seed=7,panic@50' -recover-attempts 1 >"$TMP/kill.log" 2>&1; then
    echo "FAIL: exhausted run exited 0" >&2
    cat "$TMP/kill.log" >&2
    exit 1
fi
ls "$TMP/ckpt2"/ckpt-*.ipck >/dev/null 2>&1 || {
    echo "FAIL: no checkpoints left behind by the killed run" >&2
    exit 1
}
go run ./cmd/ipregel-run -app hashmin -graph road:60:60 -combiner atomic \
    -checkpoint-dir "$TMP/ckpt2" -checkpoint-every 4 | tee "$TMP/resume.log"
grep -q "components: 1" "$TMP/resume.log" || {
    echo "FAIL: resumed invocation did not finish hashmin" >&2
    exit 1
}

echo "PASS: chaos smoke"
