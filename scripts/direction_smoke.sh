#!/usr/bin/env sh
# End-to-end smoke test of the direction model (`make direction-smoke`,
# CI leg "Race (adaptive direction)"): run SSSP under -direction
# push | pull | adaptive and require identical results and superstep
# statistics, require an adaptive run's JSONL trace to record pull
# supersteps and a real direction switch (and replay cleanly), require
# -hub-split to leave results unchanged, and record the push vs pull vs
# adaptive ablation on the RMAT stand-in to results/BENCH_direction.json.
set -eu

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

go build -o "$TMP/" ./cmd/ipregel-run ./cmd/ipregel-bench ./cmd/ipregel-trace

# 1. Direction parity through the CLI: reached count and superstep
# statistics must not depend on the transport.
# The stats line leads with the engine version name, which names the
# transport ("atomic" vs "atomic+pull") — strip it along with the time.
run_sssp() {
    "$TMP/ipregel-run" -app sssp -graph road:60:60 -combiner atomic -source 1 \
        "$@" | grep -E '^(reached|[^ ]+ +supersteps=)' \
        | sed -e 's/time=[^ ]*//' -e 's/^[^ ]* *supersteps=/supersteps=/'
}
REF="$(run_sssp -direction push)"
for dir in pull adaptive; do
    GOT="$(run_sssp -direction $dir)"
    [ "$GOT" = "$REF" ] || fail "-direction $dir diverged from push:
$GOT
vs
$REF"
    echo "ok: -direction $dir matches push"
done

# Sharded pull — the combination the engine used to reject.
GOT="$(run_sssp -direction pull -shards 4 -steal)"
[ "$GOT" = "$REF" ] || fail "-direction pull -shards 4 diverged from push"
echo "ok: -direction pull -shards 4 -steal matches push"

# 2. Hub splitting is semantically invisible on a skewed graph.
run_hashmin() {
    "$TMP/ipregel-run" -app hashmin -graph rmat:13:8 -combiner atomic \
        "$@" | grep -E '^(components|[^ ]+ +supersteps=)' \
        | sed -e 's/time=[^ ]*//' -e 's/^[^ ]* *supersteps=/supersteps=/'
}
HREF="$(run_hashmin)"
HGOT="$(run_hashmin -hub-split)"
[ "$HGOT" = "$HREF" ] || fail "-hub-split changed hashmin results:
$HGOT
vs
$HREF"
echo "ok: -hub-split matches plain run"

# 3. The adaptive trace records pull supersteps and a real switch, and
# replays through ipregel-trace.
"$TMP/ipregel-run" -app sssp -graph road:60:60 -combiner atomic -source 1 \
    -direction adaptive -trace "$TMP/adaptive.jsonl" >/dev/null
grep -q '"direction":"pull"' "$TMP/adaptive.jsonl" \
    || fail "adaptive trace records no pull superstep"
grep -q '"direction_switched":true' "$TMP/adaptive.jsonl" \
    || fail "adaptive trace records no direction switch"
"$TMP/ipregel-trace" -validate "$TMP/adaptive.jsonl" >/dev/null \
    || fail "adaptive trace does not validate/replay"
echo "ok: adaptive trace shows pull supersteps and a switch, and replays"

# 4. Record the direction ablation (push vs pull vs adaptive × PageRank/
# Hashmin/SSSP on the scale-free RMAT stand-in; the experiment enforces
# fingerprint parity internally).
mkdir -p results
"$TMP/ipregel-bench" -exp direction -quick -divisor 256 >"$TMP/direction.out"
sed -n '/^{/,/^}/p' "$TMP/direction.out" >results/BENCH_direction.json
[ -s results/BENCH_direction.json ] || fail "no JSON report in direction experiment output"
grep -q '"experiment": "direction"' results/BENCH_direction.json \
    || fail "results/BENCH_direction.json is not the direction report"
grep -q '"switches": [1-9]' results/BENCH_direction.json \
    || fail "no adaptive run in the ablation ever switched direction"
echo "ok: results/BENCH_direction.json recorded"

echo "PASS: direction smoke"
