// Package ipregel's root benchmark suite: one testing.B benchmark per
// table and figure of the paper (run with `go test -bench=. -benchmem`),
// plus the ablation benches DESIGN.md calls out. The cmd/ipregel-bench
// binary runs the same experiments with the paper's repetition protocol
// and richer reporting; these benches are the quick, benchstat-friendly
// form at a reduced scale (divisor 256 ≈ 1/256 of the paper's graphs).
package ipregel

import (
	"fmt"
	"sync"
	"testing"

	"ipregel/internal/algorithms"
	"ipregel/internal/core"
	"ipregel/internal/gen"
	"ipregel/internal/graph"
	"ipregel/internal/memmodel"
	"ipregel/internal/pregelplus"
)

const benchDivisor = 256

// benchPRRounds trades the paper's 30 PageRank iterations for benchmark
// turnaround; per-iteration cost scales linearly so shapes are unchanged.
const benchPRRounds = 10

var (
	graphOnce sync.Once
	benchWiki *graph.Graph
	benchUSA  *graph.Graph
)

func benchGraphs() (wiki, usa *graph.Graph) {
	graphOnce.Do(func() {
		benchWiki = gen.Wikipedia(gen.PresetParams{Divisor: benchDivisor, BuildInEdges: true})
		benchUSA = gen.USARoad(gen.PresetParams{Divisor: benchDivisor, BuildInEdges: true})
	})
	return benchWiki, benchUSA
}

// BenchmarkTable1GraphBuild regenerates Table 1's graphs (the stand-ins'
// construction cost, excluded from the paper's runtimes).
func BenchmarkTable1GraphBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := gen.Wikipedia(gen.PresetParams{Divisor: benchDivisor * 4})
		if g.N() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkFig7 covers the paper's Fig. 7 matrix: application × graph ×
// engine version.
func BenchmarkFig7(b *testing.B) {
	wiki, usa := benchGraphs()
	graphs := map[string]*graph.Graph{"wiki": wiki, "usa": usa}
	for gname, g := range graphs {
		for _, cfg := range core.AllVersions() {
			cfg := cfg
			if !cfg.SelectionBypass { // PageRank admits only non-bypass versions (§4)
				b.Run(fmt.Sprintf("PageRank/%s/%s", gname, cfg.VersionName()), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, _, err := algorithms.PageRank(g, cfg, benchPRRounds); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
			b.Run(fmt.Sprintf("Hashmin/%s/%s", gname, cfg.VersionName()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := algorithms.Hashmin(g, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("SSSP/%s/%s", gname, cfg.VersionName()), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := algorithms.SSSP(g, cfg, 2); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8 covers the Pregel+ node sweep; the reported ns/op is the
// real work executed (the simulated cluster time is reported as a custom
// metric, sim-ms/op).
func BenchmarkFig8(b *testing.B) {
	wiki, usa := benchGraphs()
	graphs := map[string]*graph.Graph{"wiki": wiki, "usa": usa}
	type runner struct {
		name string
		run  func(g *graph.Graph, cfg pregelplus.ClusterConfig) (pregelplus.Report, error)
	}
	runners := []runner{
		{"PageRank", func(g *graph.Graph, cfg pregelplus.ClusterConfig) (pregelplus.Report, error) {
			_, rep, err := pregelplus.PageRank(g, cfg, benchPRRounds)
			return rep, err
		}},
		{"Hashmin", func(g *graph.Graph, cfg pregelplus.ClusterConfig) (pregelplus.Report, error) {
			_, rep, err := pregelplus.Hashmin(g, cfg)
			return rep, err
		}},
		{"SSSP", func(g *graph.Graph, cfg pregelplus.ClusterConfig) (pregelplus.Report, error) {
			_, rep, err := pregelplus.SSSP(g, cfg, 2)
			return rep, err
		}},
	}
	for gname, g := range graphs {
		for _, r := range runners {
			for _, nodes := range []int{1, 4, 16} {
				b.Run(fmt.Sprintf("%s/%s/nodes=%d", r.name, gname, nodes), func(b *testing.B) {
					var sim float64
					for i := 0; i < b.N; i++ {
						rep, err := r.run(g, pregelplus.ClusterConfig{Nodes: nodes, ProcsPerNode: 2})
						if err != nil {
							b.Fatal(err)
						}
						sim += float64(rep.SimTime.Milliseconds())
					}
					b.ReportMetric(sim/float64(b.N), "sim-ms/op")
				})
			}
		}
	}
}

// BenchmarkFig8Reference is Fig. 8's iPregel single-node reference line.
func BenchmarkFig8Reference(b *testing.B) {
	wiki, usa := benchGraphs()
	b.Run("PageRank/wiki/broadcast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := algorithms.PageRank(wiki, core.Config{Combiner: core.CombinerPull}, benchPRRounds); err != nil {
				b.Fatal(err)
			}
		}
	})
	best := core.Config{Combiner: core.CombinerSpin, SelectionBypass: true}
	b.Run("SSSP/usa/spinlock+bypass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := algorithms.SSSP(usa, best, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Hashmin/usa/spinlock+bypass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := algorithms.Hashmin(usa, best); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig9MemoryFootprint runs the breaking-point experiment's unit
// of work (pull PageRank on a proportional Twitter slice with "in only"
// internals) and reports peak heap bytes as a custom metric.
func BenchmarkFig9MemoryFootprint(b *testing.B) {
	for _, pct := range []int{25, 50, 100} {
		b.Run(fmt.Sprintf("pct=%d", pct), func(b *testing.B) {
			g := gen.Twitter(gen.PresetParams{Divisor: benchDivisor * 4, BuildInEdges: true}, pct)
			inOnly, err := g.StripOutAdjacency()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var peakSum float64
			for i := 0; i < b.N; i++ {
				peak, _ := memmodel.MeasurePeakHeap(func() {
					if _, _, err := algorithms.PageRank(inOnly, core.Config{Combiner: core.CombinerPull}, 3); err != nil {
						b.Fatal(err)
					}
				})
				peakSum += float64(peak)
			}
			b.ReportMetric(peakSum/float64(b.N), "peak-heap-B/op")
		})
	}
}

// BenchmarkAddressing isolates the §5 ablation: the same Hashmin run
// under each addressing scheme (hashmap is the conventional baseline the
// paper replaces).
func BenchmarkAddressing(b *testing.B) {
	wiki, _ := benchGraphs()
	for _, addr := range []core.Addressing{core.AddressOffset, core.AddressDesolate, core.AddressHashmap} {
		cfg := core.Config{Combiner: core.CombinerSpin, Addressing: addr}
		b.Run(addr.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := algorithms.Hashmin(wiki, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedule compares the paper's static equal shares with dynamic
// chunking (§8's load-balancing future work) and the edge-balanced split
// from the CSR degree prefix sums on SSSP's skewed frontiers.
func BenchmarkSchedule(b *testing.B) {
	wiki, _ := benchGraphs()
	for _, sched := range []core.Schedule{core.ScheduleStatic, core.ScheduleDynamic, core.ScheduleEdgeBalanced} {
		cfg := core.Config{Combiner: core.CombinerSpin, Schedule: sched}
		b.Run(sched.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := algorithms.SSSP(wiki, cfg, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkContention stresses the push combiners where they differ most:
// a transposed star sends every leaf's message to one hub mailbox, so the
// whole superstep serialises on that mailbox's synchronisation — the
// mutex blocks, the spinlock busy-waits, and the atomic combiner retries
// a CAS (the hot-slot case where lock-free delivery should win). The
// +combining variants add the sender-side caches, which pre-combine the
// leaves' messages worker-locally and touch the hub mailbox only
// once per worker per superstep.
func BenchmarkContention(b *testing.B) {
	g := gen.Star(1<<14, 1).Transpose() // leaves -> hub
	for _, comb := range []core.Combiner{core.CombinerMutex, core.CombinerSpin, core.CombinerAtomic} {
		for _, combining := range []bool{false, true} {
			cfg := core.Config{Combiner: comb, SenderCombining: combining}
			b.Run(cfg.VersionName(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := algorithms.Hashmin(g, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkShardScaling sweeps the partitioned execution core over shard
// counts on the atomic combiner: per-shard mailboxes shrink the CAS
// target set, so cas-retries/op should fall as shards grow while the
// routing layer's batching keeps runtime competitive with the
// single-shard engine (results recorded in results/BENCH_shards.json).
// For each multi-shard point the delivery/scheduling modes are compared:
// barrier-only, overlapped drains, and overlap plus work stealing
// (results/BENCH_overlap.json).
func BenchmarkShardScaling(b *testing.B) {
	wiki, _ := benchGraphs()
	apps := []struct {
		name string
		run  func(cfg core.Config) (core.Report, error)
	}{
		{"PageRank", func(cfg core.Config) (core.Report, error) {
			_, rep, err := algorithms.PageRank(wiki, cfg, benchPRRounds)
			return rep, err
		}},
		{"WCC", func(cfg core.Config) (core.Report, error) {
			_, rep, err := algorithms.WCC(wiki, cfg)
			return rep, err
		}},
	}
	modes := []struct {
		name           string
		overlap, steal bool
	}{
		{"barrier", false, false},
		{"overlap", true, false},
		{"overlap+steal", true, true},
	}
	for _, app := range apps {
		for _, shards := range []int{1, 2, 4, 8} {
			for _, mode := range modes {
				if shards == 1 && (mode.overlap || mode.steal) {
					continue // shard-scheduler modes need Shards > 1
				}
				cfg := core.Config{
					Combiner:        core.CombinerAtomic,
					Shards:          shards,
					OverlapDelivery: mode.overlap,
					WorkStealing:    mode.steal,
				}
				b.Run(fmt.Sprintf("%s/shards=%d/%s", app.name, shards, mode.name), func(b *testing.B) {
					var retries, cross, early, stolen, skipped float64
					for i := 0; i < b.N; i++ {
						rep, err := app.run(cfg)
						if err != nil {
							b.Fatal(err)
						}
						for _, s := range rep.Steps {
							retries += float64(s.CASRetries)
							cross += float64(s.CrossShardMessages)
							early += float64(s.EarlyDeliveredBatches)
							stolen += float64(s.StolenTasks)
							skipped += float64(s.SkippedShards)
						}
					}
					b.ReportMetric(retries/float64(b.N), "cas-retries/op")
					b.ReportMetric(cross/float64(b.N), "cross-shard-msgs/op")
					if mode.overlap {
						b.ReportMetric(early/float64(b.N), "early-batches/op")
					}
					if mode.steal {
						b.ReportMetric(stolen/float64(b.N), "stolen-tasks/op")
					}
					if shards > 1 {
						b.ReportMetric(skipped/float64(b.N), "skipped-shards/op")
					}
				})
			}
		}
	}
}

// BenchmarkCombinerBaseline measures what sender-side combining buys the
// Pregel+ baseline (message volume → wire bytes → inbox growth).
func BenchmarkCombinerBaseline(b *testing.B) {
	wiki, _ := benchGraphs()
	for _, disable := range []bool{false, true} {
		name := "with-combiner"
		if disable {
			name = "no-combiner"
		}
		b.Run(name, func(b *testing.B) {
			var wire float64
			for i := 0; i < b.N; i++ {
				_, rep, err := pregelplus.Hashmin(wiki, pregelplus.ClusterConfig{Nodes: 4, ProcsPerNode: 2, DisableCombiner: disable})
				if err != nil {
					b.Fatal(err)
				}
				wire += float64(rep.WireBytes)
			}
			b.ReportMetric(wire/float64(b.N), "wire-B/op")
		})
	}
}

// BenchmarkWorkerPool compares per-phase goroutine forking (the default,
// mirroring the paper's OpenMP fork-join loops) with persistent pooled
// workers on a superstep-heavy workload where the per-phase spawn cost is
// most visible — on the flat engine and under the sharded overlap+steal
// scheduler, whose extra phases (routing, drains) multiply the per-phase
// dispatch cost the pool amortises.
func BenchmarkWorkerPool(b *testing.B) {
	_, usa := benchGraphs()
	engines := []struct {
		name string
		cfg  core.Config
	}{
		{"flat", core.Config{Combiner: core.CombinerSpin, SelectionBypass: true, Threads: 4}},
		{"sharded-overlap-steal", core.Config{Combiner: core.CombinerSpin, SelectionBypass: true, Threads: 4,
			Shards: 4, OverlapDelivery: true, WorkStealing: true}},
	}
	for _, eng := range engines {
		for _, persistent := range []bool{false, true} {
			name := "fork-join"
			if persistent {
				name = "persistent-pool"
			}
			cfg := eng.cfg
			cfg.PersistentWorkers = persistent
			b.Run(eng.name+"/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := algorithms.SSSP(usa, cfg, 2); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMailboxDeliver micro-benchmarks the per-message combiner cost
// (§6.1 argues busy-waiting wins on tiny critical sections).
func BenchmarkMailboxDeliver(b *testing.B) {
	g := gen.Ring(1<<16, 0).WithInEdges()
	prog := algorithms.SSSPProgram(0)
	for _, comb := range []core.Combiner{core.CombinerMutex, core.CombinerSpin, core.CombinerAtomic, core.CombinerPull} {
		cfg := core.Config{Combiner: comb}
		b.Run(comb.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(g, cfg, prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
